"""Tests for checkpoint -> results-store ingestion and cell-key parsing."""

import json

import pytest

from repro.campaign.checkpoint import CheckpointStore
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.errors import EvaluationError
from repro.store import ResultsStore, ingest_checkpoint, parse_cell_key
from repro.store.database import cell_fields

from test_database import make_result, small_spec


CELL_VARIANTS = [
    CampaignCell("dot2", "ecim", "stt", 1e-3),
    CampaignCell("and2", "trim", "reram", 0.0, memory_error_rate=1e-4, multi_output=False),
    CampaignCell("fa1", "unprotected", "sot", 1e-2, faults_per_trial=3),
    CampaignCell("dot2", "ecim", "stt", 1e-3, fault_model="burst:length=3,window=8"),
    CampaignCell("dot2", "trim", "stt", 5e-4, fault_model="stuck-at:cells=7+3,value=0"),
    CampaignCell("dot2", "ecim", "stt", 1e-3, fault_model="stochastic:preset=1e-4"),
]


class TestParseCellKey:
    @pytest.mark.parametrize("cell", CELL_VARIANTS, ids=lambda c: c.key)
    def test_round_trips_every_cell_variant(self, cell):
        assert parse_cell_key(cell.key) == cell_fields(cell)

    @pytest.mark.parametrize(
        "key",
        [
            "too|few|fields",
            "w|s|t|x1.0e-3|m0.0e0|mo",  # gate field missing its 'g' tag
            "w|s|t|g1.0e-3|m0.0e0|both",  # bad gate-style tag
            "w|s|t|g1.0e-3|m0.0e0|mo|banana",  # unknown suffix
            "w|s|t|gnope|m0.0e0|mo",  # unparseable rate
        ],
    )
    def test_malformed_keys_raise(self, key):
        with pytest.raises(EvaluationError, match="malformed cell key"):
            parse_cell_key(key)


class TestIngestCheckpoint:
    def write_checkpoint(self, tmp_path, spec, shards_per_cell=2):
        """A checkpoint file as a real campaign run would leave it."""
        path = tmp_path / "ck.jsonl"
        ck = CheckpointStore(path)
        for cell in spec.cells():
            for shard in range(shards_per_cell):
                ck.append(spec.spec_hash(), make_result(cell, shard=shard))
        return path

    def test_ingest_then_reingest_is_idempotent(self, tmp_path):
        spec = small_spec(schemes=("ecim", "trim"))
        path = self.write_checkpoint(tmp_path, spec)
        with ResultsStore(tmp_path / "r.sqlite") as store:
            first = ingest_checkpoint(store, path)
            assert first.ingested == 4 and first.duplicates == 0
            baseline = store.shard_keys()
            second = ingest_checkpoint(store, path)
            assert second.ingested == 0 and second.duplicates == 4
            assert store.shard_keys() == baseline

    def test_bare_ingest_recovers_cell_columns_from_the_key(self, tmp_path):
        spec = small_spec()
        cell = spec.cells()[0]
        path = self.write_checkpoint(tmp_path, spec, shards_per_cell=1)
        with ResultsStore(tmp_path / "r.sqlite") as store:
            ingest_checkpoint(store, path)
            row = store.rows(
                "SELECT workload, scheme, technology, gate_error_rate FROM cells"
            )[0]
        assert tuple(row) == ("and2", "ecim", "stt", 0.01)
        assert parse_cell_key(cell.key)["workload"] == "and2"

    def test_bare_ingest_registers_stub_campaign_named_after_file(self, tmp_path):
        spec = small_spec()
        path = self.write_checkpoint(tmp_path, spec)
        with ResultsStore(tmp_path / "r.sqlite") as store:
            ingest_checkpoint(store, path)
            campaign = store.campaigns()[0]
        assert campaign["name"] == "ck.jsonl"
        assert campaign["has_spec"] == 0

    def test_spec_ingest_records_full_provenance_and_filters(self, tmp_path):
        spec = small_spec()
        other = small_spec(seed=99)
        path = self.write_checkpoint(tmp_path, spec)
        ck = CheckpointStore(path)
        for cell in other.cells():
            ck.append(other.spec_hash(), make_result(cell, shard=0))
        with ResultsStore(tmp_path / "r.sqlite") as store:
            report = ingest_checkpoint(store, path, spec=spec)
            assert report.skipped_other_spec == 1
            assert report.campaigns == {spec.spec_hash()}
            assert CampaignSpec.from_json(store.spec_json(spec.spec_hash())) == spec

    def test_torn_and_drifted_lines_are_counted_not_fatal(self, tmp_path):
        spec = small_spec()
        path = self.write_checkpoint(tmp_path, spec, shards_per_cell=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "spec_hash": spec.spec_hash(),
                        "cell": "not|a|valid|key",
                        "shard": 9,
                        "counts": {"counter_from_the_future": 1},
                    }
                )
                + "\n"
            )
            handle.write('{"spec_hash": "abc", "cell": "x", "sha')  # torn tail
        with ResultsStore(tmp_path / "r.sqlite") as store:
            report = ingest_checkpoint(store, path)
            assert report.ingested == 1
            assert report.skipped_malformed == 2
            assert len(store.shard_keys()) == 1

    def test_valid_record_with_unparseable_cell_key_is_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = CheckpointStore(path)
        ck.append("feedbeeffeedbeef", make_result(small_spec().cells()[0], shard=0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"spec_hash": "feedbeeffeedbeef", "cell": "garbage-key",
                     "shard": 1, "counts": {"trials": 4}}
                )
                + "\n"
            )
        with ResultsStore(tmp_path / "r.sqlite") as store:
            report = ingest_checkpoint(store, path)
            assert report.ingested == 1
            assert report.skipped_malformed == 1

    def test_ingest_after_live_recording_adds_nothing(self, tmp_path):
        # A campaign recorded live via --db then ingested from its own
        # checkpoint must converge on the identical row set.
        from repro.campaign import run_campaign

        spec = small_spec()
        db = tmp_path / "r.sqlite"
        ck = tmp_path / "ck.jsonl"
        run_campaign(spec, workers=0, checkpoint=ck, db=db)
        with ResultsStore(db) as store:
            baseline = store.shard_keys()
            report = ingest_checkpoint(store, ck, spec=spec)
            assert report.ingested == 0
            assert report.duplicates == len(baseline) == 2
            assert store.shard_keys() == baseline
