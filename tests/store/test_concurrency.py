"""Concurrent-writer tests: parallel ingest/recording == serial ingest.

Two real OS processes hammer the same database at once (a barrier lines
them up so they genuinely contend for the advisory lock).  The contract:
the concurrent row set is *identical* to serial ingestion — no lost shards,
no duplicated shards, no corruption — even when both writers carry
overlapping records.
"""

import multiprocessing
import sqlite3

import pytest

from repro.campaign import run_campaign
from repro.campaign.checkpoint import CheckpointStore
from repro.store import ResultsStore, ingest_checkpoint, run_query

from test_database import make_result, small_spec

try:
    _CTX = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-POSIX platform
    _CTX = None

pytestmark = pytest.mark.skipif(
    _CTX is None, reason="fork start method required for the writer processes"
)


def _ingest_worker(db_path, checkpoint_paths, barrier):
    """Child process: open its own connection, sync up, ingest everything."""
    with ResultsStore(db_path) as store:
        barrier.wait(timeout=30)
        for path in checkpoint_paths:
            ingest_checkpoint(store, path)


def _record_worker(db_path, spec_dict, barrier):
    """Child process: record a whole campaign's shards live, one by one."""
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec.from_dict(spec_dict)
    with ResultsStore(db_path) as store:
        spec_hash = store.record_campaign(spec)
        barrier.wait(timeout=30)
        for cell in spec.cells():
            for shard in range(spec.shards_per_cell()):
                store.record_shard(spec_hash, cell, make_result(cell, shard=shard))


def _run_children(targets_and_args):
    processes = [_CTX.Process(target=t, args=a) for t, a in targets_and_args]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
    assert all(process.exitcode == 0 for process in processes), [
        process.exitcode for process in processes
    ]


def _snapshot(db_path):
    """Everything that defines the database's logical content."""
    with ResultsStore(db_path) as store:
        integrity = store.rows("PRAGMA integrity_check")[0][0]
        campaigns = sorted(c["spec_hash"] for c in store.campaigns())
        return integrity, campaigns, store.shard_keys(), run_query(store)


class TestConcurrentWriters:
    def make_checkpoints(self, tmp_path):
        """Two tiny campaigns' checkpoints, written without running trials."""
        paths = []
        for index, spec in enumerate(
            [small_spec(seed=1, name="a"), small_spec(seed=2, name="b", schemes=("trim",))]
        ):
            path = tmp_path / f"ck{index}.jsonl"
            ck = CheckpointStore(path)
            for cell in spec.cells():
                for shard in range(spec.shards_per_cell()):
                    ck.append(spec.spec_hash(), make_result(cell, shard=shard))
            paths.append(path)
        return paths

    def test_parallel_overlapping_ingest_equals_serial(self, tmp_path):
        ck_a, ck_b = self.make_checkpoints(tmp_path)

        serial_db = tmp_path / "serial.sqlite"
        with ResultsStore(serial_db) as store:
            ingest_checkpoint(store, ck_a)
            ingest_checkpoint(store, ck_b)

        concurrent_db = tmp_path / "concurrent.sqlite"
        ResultsStore(concurrent_db).close()  # pre-create so children only write rows
        barrier = _CTX.Barrier(2)
        # Opposite orders + full overlap: every record races its twin.
        _run_children(
            [
                (_ingest_worker, (str(concurrent_db), [str(ck_a), str(ck_b)], barrier)),
                (_ingest_worker, (str(concurrent_db), [str(ck_b), str(ck_a)], barrier)),
            ]
        )

        serial = _snapshot(serial_db)
        concurrent = _snapshot(concurrent_db)
        assert concurrent[0] == "ok"
        assert concurrent == serial

    def test_parallel_live_recording_loses_no_shards(self, tmp_path):
        specs = [
            small_spec(seed=5, name="left", schemes=("ecim", "trim")),
            small_spec(seed=6, name="right"),
        ]
        db = tmp_path / "live.sqlite"
        ResultsStore(db).close()
        barrier = _CTX.Barrier(2)
        _run_children(
            [(_record_worker, (str(db), spec.to_dict(), barrier)) for spec in specs]
        )
        integrity, campaigns, shard_keys, _query = _snapshot(db)
        assert integrity == "ok"
        assert campaigns == sorted(spec.spec_hash() for spec in specs)
        expected = sorted(
            (spec.spec_hash(), cell.key, shard)
            for spec in specs
            for cell in spec.cells()
            for shard in range(spec.shards_per_cell())
        )
        assert shard_keys == expected

    def test_live_run_racing_its_own_checkpoint_ingest(self, tmp_path):
        # The realistic collision: a campaign records live with --db while
        # someone ingests the (already-written) checkpoint of the same spec.
        spec = small_spec(seed=9, name="race")
        ck = tmp_path / "ck.jsonl"
        run_campaign(spec, workers=0, checkpoint=ck)  # leaves a full checkpoint

        db = tmp_path / "race.sqlite"
        ResultsStore(db).close()
        barrier = _CTX.Barrier(2)
        _run_children(
            [
                (_ingest_worker, (str(db), [str(ck)], barrier)),
                (_ingest_worker, (str(db), [str(ck)], barrier)),
            ]
        )
        integrity, _campaigns, shard_keys, _query = _snapshot(db)
        assert integrity == "ok"
        assert len(shard_keys) == spec.shards_per_cell() * len(spec.cells())
