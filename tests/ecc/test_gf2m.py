"""Tests for GF(2^m) arithmetic and minimal polynomials."""

import pytest

from repro.ecc.gf2m import (
    GF2m,
    cyclotomic_cosets,
    minimal_polynomial,
    poly_degree,
    poly_mod_gf2,
    poly_mul_gf2,
)
from repro.errors import CodeConstructionError


@pytest.fixture(scope="module")
def gf256():
    return GF2m(8)


class TestFieldConstruction:
    def test_orders(self, gf256):
        assert gf256.size == 256
        assert gf256.order == 255

    def test_small_field(self):
        field = GF2m(3)
        # alpha^7 == 1 in GF(8).
        assert field.alpha_pow(7) == 1

    def test_non_primitive_polynomial_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(2).
        with pytest.raises(CodeConstructionError):
            GF2m(4, primitive_poly=0b11111)

    def test_unsupported_degree(self):
        with pytest.raises(CodeConstructionError):
            GF2m(1)


class TestArithmetic:
    def test_add_is_xor(self, gf256):
        assert gf256.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_identity(self, gf256):
        for value in (1, 7, 100, 255):
            assert gf256.mul(value, 1) == value

    def test_zero_annihilates(self, gf256):
        assert gf256.mul(0, 123) == 0

    def test_inverse(self, gf256):
        for value in (1, 2, 87, 200, 255):
            assert gf256.mul(value, gf256.inv(value)) == 1

    def test_division(self, gf256):
        a, b = 113, 57
        assert gf256.mul(gf256.div(a, b), b) == a

    def test_division_by_zero(self, gf256):
        with pytest.raises(ZeroDivisionError):
            gf256.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)

    def test_pow(self, gf256):
        assert gf256.pow(gf256.alpha_pow(1), 255) == 1
        assert gf256.pow(5, 0) == 1

    def test_log_exp_roundtrip(self, gf256):
        for value in (1, 3, 99, 254):
            assert gf256.alpha_pow(gf256.log(value)) == value


class TestPolynomials:
    def test_poly_eval_horner(self, gf256):
        # p(x) = 1 + x evaluated at alpha equals alpha ^ 1 XOR 1.
        alpha = gf256.alpha_pow(1)
        assert gf256.poly_eval([1, 1], alpha) == gf256.add(1, alpha)

    def test_poly_mul_and_add(self, gf256):
        product = gf256.poly_mul([1, 1], [1, 1])  # (1+x)^2 = 1 + x^2 over GF(2)
        assert product == [1, 0, 1]
        assert gf256.poly_add([1, 0, 1], [1, 1]) == [0, 1, 1]

    def test_binary_poly_helpers(self):
        assert poly_degree(0b1011) == 3
        assert poly_mul_gf2(0b11, 0b11) == 0b101
        assert poly_mod_gf2(0b101, 0b11) == 0  # x^2+1 = (x+1)^2 mod (x+1)


class TestCyclotomicCosets:
    def test_cosets_partition_nonzero_residues(self):
        cosets = cyclotomic_cosets(4)  # modulo 15
        union = set().union(*cosets)
        assert union == set(range(1, 15))
        total = sum(len(c) for c in cosets)
        assert total == 14

    def test_coset_of_one_has_m_elements(self):
        cosets = cyclotomic_cosets(8)
        coset_of_1 = next(c for c in cosets if 1 in c)
        assert len(coset_of_1) == 8


class TestMinimalPolynomials:
    def test_minimal_polynomial_of_alpha_is_primitive_poly(self, gf256):
        assert minimal_polynomial(gf256, 1) == gf256.primitive_poly

    def test_minimal_polynomial_has_root(self, gf256):
        poly_mask = minimal_polynomial(gf256, 5)
        coefficients = [(poly_mask >> i) & 1 for i in range(poly_degree(poly_mask) + 1)]
        assert gf256.poly_eval(coefficients, gf256.alpha_pow(5)) == 0

    def test_minimal_polynomial_degree_divides_m(self, gf256):
        for exponent in (1, 3, 5, 17, 85):
            degree = poly_degree(minimal_polynomial(gf256, exponent))
            assert 8 % degree == 0
