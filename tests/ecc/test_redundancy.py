"""Tests for modular redundancy (DMR / TMR / NMR)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc.redundancy import (
    ModularRedundancy,
    dmr_compare,
    majority_vote_bit,
    majority_vote_word,
)
from repro.errors import RedundancyError

BITS = st.integers(min_value=0, max_value=1)


class TestBitVote:
    @pytest.mark.parametrize("bits,expected", [([0, 0, 1], 0), ([1, 1, 0], 1), ([1, 1, 1], 1)])
    def test_three_way(self, bits, expected):
        assert majority_vote_bit(bits) == expected

    def test_even_copies_rejected(self):
        with pytest.raises(RedundancyError):
            majority_vote_bit([0, 1])


class TestWordVote:
    def test_unanimous(self):
        result = majority_vote_word([[1, 0, 1]] * 3)
        assert result.value == (1, 0, 1)
        assert result.unanimous
        assert not result.error_detected

    def test_single_corrupted_copy_outvoted(self):
        copies = [[1, 0, 1], [1, 0, 1], [1, 1, 1]]
        result = majority_vote_word(copies)
        assert result.value == (1, 0, 1)
        assert result.disagreeing_copies == (2,)
        assert result.disagreeing_bits == (1,)

    def test_even_copy_count_rejected(self):
        with pytest.raises(RedundancyError):
            majority_vote_word([[1], [0]])

    @given(st.lists(BITS, min_size=4, max_size=4), st.integers(min_value=0, max_value=3))
    def test_any_single_bit_error_is_corrected(self, word, position):
        corrupted = list(word)
        corrupted[position] ^= 1
        result = majority_vote_word([word, word, corrupted])
        assert result.value == tuple(word)


class TestDmr:
    def test_match(self):
        match, mismatches = dmr_compare([1, 0, 1], [1, 0, 1])
        assert match and mismatches == ()

    def test_mismatch_positions(self):
        match, mismatches = dmr_compare([1, 0, 1], [1, 1, 0])
        assert not match
        assert mismatches == (1, 2)

    def test_width_mismatch(self):
        with pytest.raises(RedundancyError):
            dmr_compare([1, 0], [1])


class TestModularRedundancy:
    def test_tmr_corrects_one_error(self):
        tmr = ModularRedundancy(n_copies=3, width=4)
        assert tmr.can_correct
        assert tmr.correctable_errors == 1
        result = tmr.vote([[1, 0, 0, 1], [1, 0, 0, 1], [1, 1, 0, 1]])
        assert result.value == (1, 0, 0, 1)

    def test_five_mr_corrects_two(self):
        assert ModularRedundancy(n_copies=5, width=1).correctable_errors == 2

    def test_dmr_detects_but_cannot_correct(self):
        dmr = ModularRedundancy(n_copies=2, width=2)
        assert not dmr.can_correct
        with pytest.raises(RedundancyError):
            dmr.vote([[1, 0], [0, 0]])

    def test_dmr_match_passes_through(self):
        dmr = ModularRedundancy(n_copies=2, width=2)
        assert dmr.vote([[1, 0], [1, 0]]).value == (1, 0)

    def test_space_overhead(self):
        assert ModularRedundancy(n_copies=3, width=8).space_overhead_factor == pytest.approx(3.0)

    def test_shape_validation(self):
        tmr = ModularRedundancy(n_copies=3, width=2)
        with pytest.raises(RedundancyError):
            tmr.vote([[1, 0], [1, 0]])

    def test_invalid_construction(self):
        with pytest.raises(RedundancyError):
            ModularRedundancy(n_copies=1)
        with pytest.raises(RedundancyError):
            ModularRedundancy(n_copies=3, width=0)
