"""Tests for single-bit and two-dimensional parity (idle-data protection)."""

import numpy as np
import pytest

from repro.ecc.parity import ParityWord, TwoDimensionalParity, even_parity_bit
from repro.errors import CodeConstructionError, DecodingError


class TestEvenParity:
    @pytest.mark.parametrize(
        "bits,expected", [([0, 0], 0), ([1, 0], 1), ([1, 1], 0), ([1, 1, 1], 1)]
    )
    def test_values(self, bits, expected):
        assert even_parity_bit(bits) == expected

    def test_parity_word_roundtrip(self):
        word = ParityWord.encode([1, 0, 1, 1])
        assert word.check()

    def test_single_flip_detected(self):
        word = ParityWord.encode([1, 0, 1, 1])
        assert not word.with_bit_flipped(2).check()

    def test_double_flip_undetected(self):
        word = ParityWord.encode([1, 0, 1, 1])
        assert word.with_bit_flipped(0).with_bit_flipped(1).check()

    def test_flip_out_of_range(self):
        with pytest.raises(CodeConstructionError):
            ParityWord.encode([1, 0]).with_bit_flipped(5)


class TestTwoDimensionalParity:
    @pytest.fixture
    def block(self):
        return np.array(
            [
                [1, 0, 1, 0],
                [0, 1, 1, 1],
                [1, 1, 0, 0],
            ],
            dtype=np.uint8,
        )

    def test_clean_block_passes(self, block):
        scheme = TwoDimensionalParity(block)
        bad_rows, bad_cols = scheme.check(block)
        assert bad_rows == [] and bad_cols == []

    def test_storage_overhead(self, block):
        assert TwoDimensionalParity(block).storage_overhead_bits == 7

    def test_single_error_located_and_corrected(self, block):
        scheme = TwoDimensionalParity(block)
        corrupted = block.copy()
        corrupted[1, 2] ^= 1
        bad_rows, bad_cols = scheme.check(corrupted)
        assert bad_rows == [1] and bad_cols == [2]
        assert np.array_equal(scheme.correct(corrupted), block)

    def test_two_errors_in_one_row_not_correctable(self, block):
        scheme = TwoDimensionalParity(block)
        corrupted = block.copy()
        corrupted[0, 0] ^= 1
        corrupted[0, 3] ^= 1
        with pytest.raises(DecodingError):
            scheme.correct(corrupted)

    def test_computation_errors_not_covered(self, block):
        # The key limitation the paper points out for prior PiM ECC [32], [36]:
        # parities protect data at rest only.
        assert not TwoDimensionalParity(block).covers_computation_errors()

    def test_shape_change_rejected(self, block):
        scheme = TwoDimensionalParity(block)
        with pytest.raises(CodeConstructionError):
            scheme.check(block[:2])

    def test_empty_block_rejected(self):
        with pytest.raises(CodeConstructionError):
            TwoDimensionalParity(np.zeros((0, 3)))
