"""Tests for Berger codes and why they fail the paper's column-wise ECC criteria."""

import pytest

from repro.ecc.berger import BergerCode
from repro.errors import CodeConstructionError


class TestConstruction:
    @pytest.mark.parametrize("k,check_bits", [(1, 1), (3, 2), (7, 3), (8, 4), (247, 8)])
    def test_check_symbol_width(self, k, check_bits):
        assert BergerCode(k).check_bits == check_bits

    def test_codeword_length(self):
        assert BergerCode(8).n == 12

    def test_invalid_k(self):
        with pytest.raises(CodeConstructionError):
            BergerCode(0)


class TestChecking:
    def test_check_symbol_counts_zeros(self):
        code = BergerCode(6)
        word = code.encode([1, 0, 0, 1, 0, 1])
        assert word.zero_count == 3

    def test_clean_word_passes(self):
        code = BergerCode(5)
        assert code.check(code.encode([0, 1, 1, 0, 1]))

    def test_wrong_length_rejected(self):
        with pytest.raises(CodeConstructionError):
            BergerCode(4).encode([1, 0])

    def test_unidirectional_errors_detected(self):
        code = BergerCode(8)
        original = [1, 1, 0, 0, 1, 0, 1, 1]
        # Flip several 1s to 0 (all in the same direction).
        corrupted = [0, 0, 0, 0, 1, 0, 1, 1]
        assert code.detects(original, corrupted)

    def test_bidirectional_error_can_escape(self):
        code = BergerCode(4)
        original = [1, 0, 1, 0]
        corrupted = [0, 1, 1, 0]  # one 1->0 and one 0->1: zero count unchanged
        assert not code.detects(original, corrupted)


class TestHomomorphismFailure:
    def test_nor_check_symbols_depend_on_data(self):
        # Section III-A criterion (1): for column-wise ECC the output check
        # symbol must be computable from the input check symbols alone.
        # Berger codes violate this for bitwise NOR.
        assert BergerCode(8).nor_check_symbol_needs_data()

    def test_failure_demonstrated_for_paper_word_width(self):
        assert BergerCode(247).nor_check_symbol_needs_data()
