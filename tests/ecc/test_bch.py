"""Tests for BCH codes (the Fig. 8 extension of ECiM to multi-error correction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import (
    BchCode,
    bch_dimension,
    bch_parity_bits,
    parity_bits_vs_correctable_errors,
)
from repro.errors import CodeConstructionError


class TestParityBitCounts:
    def test_fig8_series_for_bch_255(self):
        # The canonical BCH-255 parity-bit counts for t = 1..10.
        rows = parity_bits_vs_correctable_errors(255, tuple(range(1, 11)))
        assert [r["parity_bits"] for r in rows] == [8, 16, 24, 32, 40, 48, 56, 64, 68, 76]

    def test_t1_matches_hamming_255_247(self):
        assert bch_parity_bits(255, 1) == 8
        assert bch_dimension(255, 1) == 247

    def test_known_bch_dimensions(self):
        # Classic (n, k, t) triples for BCH-255.
        assert bch_dimension(255, 2) == 239
        assert bch_dimension(255, 3) == 231
        assert bch_dimension(255, 5) == 215

    def test_parity_growth_is_sublinear_in_t(self):
        rows = parity_bits_vs_correctable_errors(255, tuple(range(1, 11)))
        increments = [
            rows[i + 1]["parity_bits"] - rows[i]["parity_bits"] for i in range(len(rows) - 1)
        ]
        # Increments never exceed m = 8 and eventually drop below it.
        assert max(increments) <= 8
        assert min(increments) < 8

    def test_bch_63(self):
        assert bch_parity_bits(63, 1) == 6
        assert bch_dimension(63, 2) == 51

    def test_repetition_limit(self):
        # BCH(15) with t = 7 degenerates to the length-15 repetition code.
        assert bch_parity_bits(15, 7) == 14
        assert bch_dimension(15, 7) == 1

    def test_invalid_parameters(self):
        with pytest.raises(CodeConstructionError):
            bch_parity_bits(100, 1)  # not 2^m - 1
        with pytest.raises(CodeConstructionError):
            bch_parity_bits(255, 0)
        with pytest.raises(CodeConstructionError):
            bch_parity_bits(15, 8)  # designed distance would exceed n


class TestSmallBchCode:
    @pytest.fixture(scope="class")
    def code(self):
        return BchCode(15, 2)  # BCH(15, 7, t=2)

    def test_dimensions(self, code):
        assert code.n == 15
        assert code.k == 7
        assert code.n_parity == 8
        assert code.designed_distance == 5

    def test_clean_codeword(self, code):
        data = [1, 0, 1, 1, 0, 0, 1]
        word = code.encode(data)
        assert code.is_codeword(word)
        assert list(code.extract_data(word)) == data

    def test_corrects_one_error(self, code):
        word = code.encode([1, 1, 0, 0, 1, 0, 1])
        corrupted = word.copy()
        corrupted[3] ^= 1
        result = code.decode(corrupted)
        assert result.error_corrected
        assert np.array_equal(result.corrected, word)

    def test_corrects_two_errors_everywhere(self, code):
        word = code.encode([0, 1, 1, 0, 1, 1, 0])
        for i in range(code.n):
            for j in range(i + 1, code.n):
                corrupted = word.copy()
                corrupted[i] ^= 1
                corrupted[j] ^= 1
                result = code.decode(corrupted)
                assert np.array_equal(result.corrected, word), (i, j)

    def test_three_errors_not_silently_accepted(self, code):
        word = code.encode([0, 0, 0, 0, 0, 0, 0])
        corrupted = word.copy()
        for i in (1, 5, 9):
            corrupted[i] ^= 1
        result = code.decode(corrupted)
        # Beyond the designed distance the decoder must not claim success
        # with the original word; either it flags uncorrectable or it
        # miscorrects to a *different* codeword.
        assert result.detected_uncorrectable or not np.array_equal(result.corrected, word)

    def test_linearity(self, code):
        a = np.array([1, 0, 1, 0, 1, 0, 1], dtype=np.uint8)
        b = np.array([0, 1, 1, 1, 0, 0, 1], dtype=np.uint8)
        assert np.array_equal(code.encode(a ^ b), code.encode(a) ^ code.encode(b))

    def test_parity_bits_affected_by(self, code):
        for bit in range(code.k):
            affected = code.parity_bits_affected_by(bit)
            assert all(0 <= p < code.n_parity for p in affected)
        with pytest.raises(CodeConstructionError):
            code.parity_bits_affected_by(code.k)

    def test_systematic_matrices(self, code):
        h = code.parity_check_matrix
        assert h.shape == (code.n_parity, code.n)
        # Every codeword must satisfy H @ c = 0 with the [data | parity] layout.
        word = code.encode([1, 1, 1, 0, 0, 1, 0]).astype(int)
        assert not ((h.astype(int) @ word) % 2).any()


class TestBch255:
    @pytest.fixture(scope="class")
    def code(self):
        return BchCode(255, 3)

    def test_dimensions(self, code):
        assert code.k == 231
        assert code.n_parity == 24

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_corrects_three_errors(self, code, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=code.k).astype(np.uint8)
        word = code.encode(data)
        corrupted = word.copy()
        positions = rng.choice(code.n, size=3, replace=False)
        for p in positions:
            corrupted[p] ^= 1
        result = code.decode(corrupted)
        assert np.array_equal(result.corrected, word)

    def test_average_parity_updates_reasonable(self, code):
        w = code.average_parity_updates_per_data_bit(sample=32)
        assert 1.0 <= w <= code.n_parity
