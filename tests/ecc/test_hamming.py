"""Tests for Hamming codes, including the paper's Hamming(7,4) and Hamming(255,247)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.hamming import (
    HAMMING_7_4,
    HAMMING_255_247,
    HammingCode,
    hamming_parameters_for_data_bits,
    hamming_parity_bits_for,
)
from repro.errors import CodeConstructionError


class TestParameterSelection:
    @pytest.mark.parametrize(
        "k,expected_r", [(1, 2), (4, 3), (11, 4), (26, 5), (57, 6), (120, 7), (247, 8)]
    )
    def test_minimum_parity_bits(self, k, expected_r):
        assert hamming_parity_bits_for(k) == expected_r

    def test_parameters_for_data_bits(self):
        assert hamming_parameters_for_data_bits(4) == (7, 4)
        assert hamming_parameters_for_data_bits(247) == (255, 247)

    def test_parity_bits_grow_logarithmically(self):
        # log(n+1)-style growth (Section II-C): doubling k adds one bit.
        assert hamming_parity_bits_for(200) == hamming_parity_bits_for(120) + 1

    def test_invalid_k(self):
        with pytest.raises(CodeConstructionError):
            hamming_parity_bits_for(0)


class TestCanonicalCodes:
    def test_hamming_7_4_dimensions(self):
        assert HAMMING_7_4.n == 7
        assert HAMMING_7_4.k == 4
        assert HAMMING_7_4.r == 3
        assert HAMMING_7_4.is_full_length

    def test_hamming_255_247_dimensions(self):
        assert HAMMING_255_247.n == 255
        assert HAMMING_255_247.k == 247
        assert HAMMING_255_247.r == 8
        assert HAMMING_255_247.is_full_length

    def test_both_single_error_correcting(self):
        assert HAMMING_7_4.is_single_error_correcting()
        assert HAMMING_255_247.is_single_error_correcting()

    def test_correctable_errors(self):
        assert HAMMING_7_4.correctable_errors() == 1

    def test_hamming_7_4_minimum_distance(self):
        assert HAMMING_7_4.minimum_distance() == 3

    def test_average_parity_updates_255_247(self):
        # Column weights of the (255,247) code: all 8-bit patterns of weight
        # >= 2; total weight = 1024 - 8 ones = 1016, so the mean is ~4.11.
        assert HAMMING_255_247.average_parity_updates_per_data_bit() == pytest.approx(
            1016 / 247, abs=1e-6
        )


class TestShortenedCodes:
    def test_shortened_code_for_arbitrary_k(self):
        code = HammingCode(k=20)
        assert code.k == 20
        assert code.r == 5
        assert not code.is_full_length
        assert code.is_single_error_correcting()

    def test_overprovisioned_parity(self):
        code = HammingCode(k=4, r=5)
        assert code.n == 9
        assert code.is_single_error_correcting()

    def test_insufficient_parity_rejected(self):
        with pytest.raises(CodeConstructionError):
            HammingCode(k=5, r=3)

    def test_from_codeword_length_validates(self):
        with pytest.raises(CodeConstructionError):
            HammingCode.from_codeword_length(10, 12)

    def test_single_data_bit_code(self):
        code = HammingCode(k=1)
        word = code.encode([1])
        corrupted = word.copy()
        corrupted[0] ^= 1
        assert list(code.decode(corrupted).corrected) == list(word)


class TestErrorCorrection:
    @pytest.mark.parametrize("position", [0, 3, 6])
    def test_hamming_7_4_corrects_single_errors(self, position):
        word = HAMMING_7_4.encode([1, 0, 0, 1])
        corrupted = word.copy()
        corrupted[position] ^= 1
        result = HAMMING_7_4.decode(corrupted)
        assert result.error_corrected
        assert np.array_equal(result.corrected, word)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=254),
    )
    def test_hamming_255_247_corrects_any_single_error(self, seed, position):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=247).astype(np.uint8)
        word = HAMMING_255_247.encode(data)
        corrupted = word.copy()
        corrupted[position] ^= 1
        result = HAMMING_255_247.decode(corrupted)
        assert result.error_corrected
        assert np.array_equal(result.corrected, word)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_clean_codewords_pass(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=247).astype(np.uint8)
        result = HAMMING_255_247.decode(HAMMING_255_247.encode(data))
        assert not result.error_detected
        assert np.array_equal(result.data, data)

    def test_parity_bit_error_does_not_corrupt_data(self):
        data = np.ones(247, dtype=np.uint8)
        word = HAMMING_255_247.encode(data)
        corrupted = word.copy()
        corrupted[250] ^= 1  # a parity position
        result = HAMMING_255_247.decode(corrupted)
        assert np.array_equal(result.data, data)
