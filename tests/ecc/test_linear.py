"""Tests for the generic systematic linear block code."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc.linear import SystematicLinearCode
from repro.errors import CodeConstructionError

# The Hamming(7,4) A submatrix (weight >= 2 columns of 3 bits).
A_7_4 = [
    [1, 1, 0, 1],
    [1, 0, 1, 1],
    [0, 1, 1, 1],
]


@pytest.fixture
def code():
    return SystematicLinearCode(A_7_4, name="Hamming(7,4)")


class TestConstruction:
    def test_dimensions(self, code):
        assert code.n == 7
        assert code.k == 4
        assert code.n_parity == 3
        assert code.rate == pytest.approx(4 / 7)

    def test_generator_is_systematic(self, code):
        g = code.generator_matrix
        assert g.shape == (4, 7)
        assert np.array_equal(g[:, :4], np.eye(4, dtype=np.uint8))

    def test_parity_check_is_systematic(self, code):
        h = code.parity_check_matrix
        assert h.shape == (3, 7)
        assert np.array_equal(h[:, 4:], np.eye(3, dtype=np.uint8))

    def test_gh_orthogonality(self, code):
        product = (code.generator_matrix.astype(int) @ code.parity_check_matrix.T.astype(int)) % 2
        assert not product.any()

    def test_rejects_non_2d_a(self):
        with pytest.raises(CodeConstructionError):
            SystematicLinearCode([1, 0, 1])

    def test_rejects_non_binary_a(self):
        with pytest.raises(CodeConstructionError):
            SystematicLinearCode([[2, 0], [0, 1]])


class TestEncoding:
    def test_codeword_starts_with_data(self, code):
        word = code.encode([1, 0, 1, 1])
        assert list(word[:4]) == [1, 0, 1, 1]

    def test_all_zero_data_gives_all_zero_codeword(self, code):
        assert not code.encode([0, 0, 0, 0]).any()

    def test_parity_matches_a_matrix(self, code):
        data = [1, 0, 0, 0]
        parity = code.parity_bits(data)
        assert list(parity) == [1, 1, 0]  # first column of A

    def test_wrong_length_rejected(self, code):
        with pytest.raises(CodeConstructionError):
            code.encode([1, 0])

    def test_linearity(self, code):
        a = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = np.array([0, 1, 1, 1], dtype=np.uint8)
        assert np.array_equal(code.encode(a ^ b), code.encode(a) ^ code.encode(b))


class TestDecoding:
    def test_clean_word_has_zero_syndrome(self, code):
        word = code.encode([1, 1, 0, 1])
        assert not code.syndrome(word).any()
        result = code.decode(word)
        assert not result.error_detected
        assert list(result.data) == [1, 1, 0, 1]

    @pytest.mark.parametrize("position", range(7))
    def test_corrects_any_single_error(self, code, position):
        word = code.encode([1, 0, 1, 1])
        corrupted = word.copy()
        corrupted[position] ^= 1
        result = code.decode(corrupted)
        assert result.error_corrected
        assert result.error_positions == (position,)
        assert np.array_equal(result.corrected, word)

    def test_double_error_detected_not_corrected_to_original(self, code):
        word = code.encode([1, 0, 1, 1])
        corrupted = word.copy()
        corrupted[0] ^= 1
        corrupted[1] ^= 1
        result = code.decode(corrupted)
        # A distance-3 code cannot correct a double error; it either flags it
        # or miscorrects — it must never silently return the original word.
        assert result.error_detected

    def test_extract_data(self, code):
        word = code.encode([0, 1, 1, 0])
        assert list(code.extract_data(word)) == [0, 1, 1, 0]

    def test_minimum_distance_is_three(self, code):
        assert code.minimum_distance() == 3

    def test_is_single_error_correcting(self, code):
        assert code.is_single_error_correcting()


class TestEcimFacingHelpers:
    def test_parity_bits_affected_by_matches_a_columns(self, code):
        assert code.parity_bits_affected_by(0) == (0, 1)
        assert code.parity_bits_affected_by(3) == (0, 1, 2)

    def test_parity_bits_affected_by_range_check(self, code):
        with pytest.raises(CodeConstructionError):
            code.parity_bits_affected_by(4)

    def test_average_parity_updates(self, code):
        total_ones = sum(sum(row) for row in A_7_4)
        assert code.average_parity_updates_per_data_bit() == pytest.approx(total_ones / 4)

    def test_incremental_parity_update_matches_reencoding(self, code):
        data = np.array([1, 0, 1, 0], dtype=np.uint8)
        parity = code.parity_bits(data)
        flipped = data.copy()
        flipped[2] ^= 1
        updated = code.update_parity_for_bit_change(parity, 2)
        assert np.array_equal(updated, code.parity_bits(flipped))

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=3))
    def test_incremental_update_property(self, value, bit):
        code = SystematicLinearCode(A_7_4)
        data = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
        parity = code.parity_bits(data)
        flipped = data.copy()
        flipped[bit] ^= 1
        assert np.array_equal(
            code.update_parity_for_bit_change(parity, bit), code.parity_bits(flipped)
        )
