"""Tests for the GF(2) linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import gf2
from repro.errors import CodeConstructionError


class TestCoercion:
    def test_as_gf2_accepts_lists(self):
        array = gf2.as_gf2([1, 0, 1])
        assert array.dtype == np.uint8
        assert list(array) == [1, 0, 1]

    def test_as_gf2_rejects_non_binary(self):
        with pytest.raises(CodeConstructionError):
            gf2.as_gf2([0, 2])

    def test_is_binary(self):
        assert gf2.is_binary(np.array([0, 1, 1]))
        assert not gf2.is_binary(np.array([0, 3]))


class TestArithmetic:
    def test_addition_is_xor(self):
        result = gf2.gf2_add([1, 0, 1], [1, 1, 0])
        assert list(result) == [0, 1, 1]

    def test_matmul_mod2(self):
        a = [[1, 1], [0, 1]]
        b = [[1, 0], [1, 1]]
        result = gf2.gf2_matmul(a, b)
        assert result.tolist() == [[0, 1], [1, 1]]

    def test_matvec(self):
        m = [[1, 1, 0], [0, 1, 1]]
        v = [1, 1, 1]
        assert list(gf2.gf2_matvec(m, v)) == [0, 0]

    def test_matvec_dimension_mismatch(self):
        with pytest.raises(CodeConstructionError):
            gf2.gf2_matvec([[1, 0]], [1, 0, 1])

    def test_identity(self):
        assert gf2.identity(3).tolist() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_stacking(self):
        h = gf2.hstack([gf2.identity(2), [[1], [1]]])
        assert h.shape == (2, 3)
        v = gf2.vstack([[[1, 0]], [[0, 1]]])
        assert v.shape == (2, 2)


class TestRrefAndRank:
    def test_rref_identity(self):
        m, pivots = gf2.gf2_rref(gf2.identity(3))
        assert m.tolist() == gf2.identity(3).tolist()
        assert pivots == [0, 1, 2]

    def test_rank_of_singular_matrix(self):
        assert gf2.gf2_rank([[1, 1], [1, 1]]) == 1

    def test_rank_of_full_rank_matrix(self):
        assert gf2.gf2_rank([[1, 0, 1], [0, 1, 1], [1, 1, 1]]) == 3

    @given(st.integers(min_value=1, max_value=5))
    def test_rank_bounded_by_dimensions(self, n):
        rng = np.random.default_rng(n)
        matrix = rng.integers(0, 2, size=(n, n + 1))
        assert gf2.gf2_rank(matrix) <= n


class TestBitConversions:
    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_roundtrip(self, value):
        bits = gf2.bits_from_int(value, 12)
        assert gf2.int_from_bits(bits) == value

    def test_width_overflow_rejected(self):
        with pytest.raises(CodeConstructionError):
            gf2.bits_from_int(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(CodeConstructionError):
            gf2.bits_from_int(-1, 4)

    def test_weight(self):
        assert gf2.weight([1, 0, 1, 1]) == 3
        assert gf2.weight([0, 0]) == 0


class TestEnumeration:
    def test_all_binary_vectors_count(self):
        vectors = list(gf2.all_binary_vectors(3))
        assert len(vectors) == 8
        assert {tuple(v) for v in vectors} == {
            tuple(gf2.bits_from_int(i, 3)) for i in range(8)
        }

    def test_refuses_huge_enumerations(self):
        with pytest.raises(CodeConstructionError):
            list(gf2.all_binary_vectors(30))
