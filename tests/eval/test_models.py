"""Tests for the analytical evaluation model (Table IV / Table V / Fig. 7 engine)."""

import pytest

from repro.core.protection import EcimScheme, TrimScheme, UnprotectedScheme
from repro.errors import EvaluationError
from repro.eval.models import EvaluationConfig, EvaluationModel
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def model():
    return EvaluationModel()


@pytest.fixture(scope="module")
def mm8():
    return get_workload("mm8")


@pytest.fixture(scope="module")
def fft8():
    return get_workload("fft8")


class TestConfig:
    def test_defaults(self):
        config = EvaluationConfig()
        assert config.budget.n_arrays == 16
        assert config.partitions_per_row >= 1

    def test_validation(self):
        with pytest.raises(EvaluationError):
            EvaluationConfig(partitions_per_row=0)
        with pytest.raises(EvaluationError):
            EvaluationConfig(live_fraction=1.5)
        with pytest.raises(EvaluationError):
            EvaluationConfig(reclaim_event_overhead_ns=-1.0)


class TestDesignEvaluation:
    def test_baseline_has_no_metadata_costs(self, model, mm8):
        baseline = model.evaluate_design(mm8, UnprotectedScheme(), "stt")
        assert baseline.timing.metadata_ns == 0.0
        assert baseline.energy.metadata_fj == 0.0
        assert baseline.checker_energy_fj == 0.0
        assert baseline.total_time_ns > 0.0
        assert baseline.total_energy_fj > 0.0

    def test_protected_designs_cost_more(self, model, mm8):
        baseline = model.evaluate_design(mm8, UnprotectedScheme(), "stt")
        for scheme in (EcimScheme(), TrimScheme()):
            protected = model.evaluate_design(mm8, scheme, "stt")
            assert protected.total_time_ns > baseline.total_time_ns
            assert protected.total_energy_fj > baseline.total_energy_fj

    def test_technology_affects_absolute_energy(self, model, mm8):
        stt = model.evaluate_design(mm8, UnprotectedScheme(), "stt")
        sot = model.evaluate_design(mm8, UnprotectedScheme(), "sot")
        reram = model.evaluate_design(mm8, UnprotectedScheme(), "reram")
        assert sot.total_energy_fj < stt.total_energy_fj < reram.total_energy_fj

    def test_technology_object_accepted(self, model, mm8):
        from repro.pim.technology import STT_MRAM

        by_name = model.evaluate_design(mm8, UnprotectedScheme(), "stt")
        by_object = model.evaluate_design(mm8, UnprotectedScheme(), STT_MRAM)
        assert by_name.total_energy_fj == pytest.approx(by_object.total_energy_fj)


class TestComparisons:
    def test_time_overhead_in_paper_band(self, model, mm8):
        for scheme in (EcimScheme(), TrimScheme()):
            comparison = model.compare(mm8, scheme, "stt")
            assert 0.0 < comparison.time_overhead_percent < 100.0

    def test_energy_overhead_positive(self, model, mm8):
        for scheme in (EcimScheme(), TrimScheme()):
            comparison = model.compare(mm8, scheme, "stt")
            assert comparison.energy_overhead_factor > 0.0
            assert comparison.energy_overhead_percent == pytest.approx(
                100.0 * comparison.energy_overhead_factor
            )

    def test_single_output_energy_exceeds_multi_output(self, model, mm8):
        for scheme in (EcimScheme(), TrimScheme()):
            multi = model.compare(mm8, scheme, "stt", multi_output=True)
            single = model.compare(mm8, scheme, "stt", multi_output=False)
            assert single.energy_overhead_factor > multi.energy_overhead_factor

    def test_trim_energy_cheaper_than_ecim_for_matmul(self, model, mm8):
        # Table V shape for the matmul benchmarks with multi-output gates.
        ecim = model.compare(mm8, EcimScheme(), "stt")
        trim = model.compare(mm8, TrimScheme(), "stt")
        assert trim.energy_overhead_factor < ecim.energy_overhead_factor

    def test_trim_time_exceeds_ecim_for_large_fft(self, model):
        # Fig. 7 shape: at fft64 ECiM's time overhead drops below TRiM's.
        fft64 = get_workload("fft64")
        ecim = model.compare(fft64, EcimScheme(), "stt")
        trim = model.compare(fft64, TrimScheme(), "stt")
        assert ecim.time_overhead_percent < trim.time_overhead_percent

    def test_extra_reclaims_positive_for_trim(self, model, mm8):
        comparison = model.compare(mm8, TrimScheme(), "stt")
        assert comparison.extra_reclaims > 0

    def test_shared_baseline_reused(self, model, mm8):
        baseline = model.evaluate_design(mm8, UnprotectedScheme(), "stt")
        comparison = model.compare(mm8, EcimScheme(), "stt", baseline=baseline)
        assert comparison.baseline is baseline


class TestReclaims:
    def test_reclaim_ordering(self, model, mm8):
        unprotected = model.reclaims_for(mm8, UnprotectedScheme())
        ecim = model.reclaims_for(mm8, EcimScheme())
        trim = model.reclaims_for(mm8, TrimScheme())
        assert unprotected <= ecim < trim

    def test_reclaims_grow_with_problem_size(self, model):
        assert model.reclaims_for(get_workload("mm64"), EcimScheme()) > model.reclaims_for(
            get_workload("mm8"), EcimScheme()
        )

    def test_mnist_has_most_reclaims(self, model):
        # Table IV: the MLP benchmarks dominate the reclaim counts.
        mnist4 = model.reclaims_for(get_workload("mnist4"), TrimScheme())
        mm64 = model.reclaims_for(get_workload("mm64"), TrimScheme())
        fft64 = model.reclaims_for(get_workload("fft64"), TrimScheme())
        assert mnist4 > mm64 and mnist4 > fft64
