"""Tests for the experiment registry (one runner per table/figure)."""

import pytest

from repro.errors import UnknownExperimentError
from repro.eval.experiments import (
    EXPERIMENTS,
    available_experiments,
    experiment_fig6,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    run_experiment,
)

# Small benchmark subset so the experiment tests stay quick.
SUBSET = ("mm8", "mnist1", "fft8")


class TestRegistry:
    def test_every_table_and_figure_has_an_experiment(self):
        for experiment_id in ("table1", "table2", "table3", "table4", "table5", "fig6", "fig7", "fig8", "fig9"):
            assert experiment_id in EXPERIMENTS

    def test_ablations_registered(self):
        assert "ablation_granularity" in EXPERIMENTS
        assert "ablation_partitions" in EXPERIMENTS
        assert "ablation_codes" in EXPERIMENTS

    def test_campaign_registered(self):
        assert "campaign" in EXPERIMENTS

    def test_multifault_registered(self):
        assert "multifault" in EXPERIMENTS

    def test_available_experiments_sorted(self):
        assert available_experiments() == sorted(available_experiments())

    def test_run_experiment_dispatch(self):
        result = run_experiment("table1")
        assert "rendered" in result

    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError):
            run_experiment("table99")


class TestTableExperiments:
    def test_table1_matches_paper(self):
        result = experiment_table1()
        assert [r["out"] for r in result["rows"]] == [0, 1, 1, 0]
        assert [r["out"] for r in result["two_step_rows"]] == [0, 1, 1, 0]
        assert "Table I" in result["rendered"]

    def test_table2_design_points(self):
        result = experiment_table2(n_outputs=128)
        assert len(result["points"]) == 4
        assert result["n_outputs"] == 128

    def test_table3_lists_three_technologies(self):
        result = experiment_table3()
        assert len(result["rows"]) == 3
        assert {row["technology"] for row in result["rows"]} == {"stt", "sot", "reram"}

    def test_table4_reclaim_shape(self):
        result = experiment_table4(benchmarks=SUBSET)
        reclaims = result["reclaims"]
        assert set(reclaims) == set(SUBSET)
        for name in SUBSET:
            assert reclaims[name]["trim"] > reclaims[name]["ecim"]
        # Growth with problem scale: the MLP dwarfs the small matmul.
        assert reclaims["mnist1"]["ecim"] > reclaims["mm8"]["ecim"]

    def test_table5_energy_shape(self):
        result = experiment_table5(benchmarks=("mm8",))
        row = result["energy_overhead"]["mm8"]
        assert len(row) == 12  # 2 schemes x 3 technologies x 2 gate styles
        for tech in ("reram", "stt", "sot"):
            assert row[f"ecim/{tech}/s-o"] > row[f"ecim/{tech}/m-o"]
            assert row[f"trim/{tech}/s-o"] > row[f"trim/{tech}/m-o"]
            assert row[f"trim/{tech}/m-o"] < row[f"ecim/{tech}/m-o"]


class TestFigureExperiments:
    def test_fig6_sep_holds(self):
        result = experiment_fig6()
        assert result["backend"] == "scalar"
        assert result["ecim_sep"] is True
        assert result["trim_sep"] is True
        assert result["ecim_protected"] == result["ecim_sites"]
        assert result["error_escapes_without_checks"] is True

    def test_fig6_batched_backend_reproduces_scalar_artefact(self):
        # The acceptance criterion: per-site outcome equality means the whole
        # rendered Fig. 6 case table is identical across backends.
        scalar = experiment_fig6(backend="scalar")
        batched = experiment_fig6(backend="batched")
        assert batched["case_table"] == scalar["case_table"]
        assert batched["rendered"] == scalar["rendered"]
        for key in ("ecim_sites", "ecim_protected", "trim_sites", "trim_protected"):
            assert batched[key] == scalar[key]

    def test_fig7_time_overheads_in_band(self):
        result = experiment_fig7(benchmarks=SUBSET)
        for series in result["time_overhead_percent"].values():
            assert len(series) == len(SUBSET)
            assert all(0.0 <= value < 100.0 for value in series)

    def test_fig8_parity_series(self):
        result = experiment_fig8()
        assert [r["parity_bits"] for r in result["rows"]][:4] == [8, 16, 24, 32]
        assert result["hamming_parity_bits"] == 8

    def test_fig9_curves(self):
        result = experiment_fig9()
        parallel = [p for p in result["noise_margins"] if p.topology == "parallel"]
        assert len(parallel) == 10
        assert all(p.feasible for p in parallel)
        assert len(result["bias_voltages"]["v_high_parallel"]) == 10


class TestAblationExperiments:
    def test_granularity_ablation(self):
        result = run_experiment("ablation_granularity")
        assert result["logic_level_protected"] == result["logic_level_sites"]
        assert result["circuit_granularity_escapes"] is True

    def test_partition_ablation_monotone(self):
        result = run_experiment("ablation_partitions", block_counts=(1, 2, 4))
        drains = [row[2] for row in result["rows"]]
        assert drains == sorted(drains, reverse=True)

    def test_codes_ablation_monotone(self):
        result = run_experiment("ablation_codes", benchmarks=("mm16",), t_values=(1, 2))
        overheads = result["results"]["mm16"]
        assert overheads[2] > overheads[1]

    def test_coverage_extension_experiment(self):
        result = run_experiment("coverage", benchmark="mm8", gate_error_rates=(1e-5, 1e-3))
        assert result["n_levels"] > 0
        assert "empirical_rows" not in result  # analytic-only by default
        for row in result["rows"]:
            assert row["survival_t1"] <= row["survival_t3"]

    def test_coverage_empirical_complement_with_backend(self):
        result = run_experiment(
            "coverage",
            benchmark="mm8",
            gate_error_rates=(1e-4, 1e-3),
            backend="batched",
            empirical_trials=120,
        )
        rows = result["empirical_rows"]
        assert [row["gate_error_rate"] for row in rows] == [1e-4, 1e-3]
        assert all(0.0 <= row["coverage"] <= 1.0 for row in rows)
        assert "Empirical complement" in result["rendered"]


class TestRenderedOutput:
    @pytest.mark.parametrize("experiment_id", ["table1", "table2", "table3", "fig8", "fig9"])
    def test_rendered_output_nonempty(self, experiment_id):
        result = run_experiment(experiment_id)
        assert isinstance(result["rendered"], str)
        assert len(result["rendered"].splitlines()) >= 3


class TestCampaignExperiment:
    def test_small_campaign(self):
        result = run_experiment(
            "campaign",
            workloads=("and2",),
            gate_error_rates=(1e-2,),
            trials=20,
            shard_size=10,
            seed=5,
        )
        assert result["summary"]["total_trials"] == 20 * 3  # three schemes
        assert len(result["cells"]) == 3
        for cell in result["cells"].values():
            low, high = cell["coverage_interval"]
            assert low <= cell["coverage"] <= high
        assert "empirical error coverage" in result["rendered"]

    def test_campaign_experiment_is_deterministic(self):
        kwargs = dict(workloads=("and2",), gate_error_rates=(1e-2,), trials=15, seed=3)
        assert (
            run_experiment("campaign", **kwargs)["cells"]
            == run_experiment("campaign", **kwargs)["cells"]
        )


class TestRareEventExperiment:
    def test_importance_gain_at_1e5(self):
        result = run_experiment("rare_event", trials=2000, shard_size=1000)
        rows = result["estimators"]
        assert set(rows) == {"uniform", "importance", "stratified"}
        importance = rows["importance"]
        assert 0.0 < importance["estimate"] < 1e-4
        assert importance["halfwidth"] > 0.0
        # The tentpole demo claim: >= 10x cheaper than uniform Monte Carlo.
        assert result["efficiency_gain"] >= 10.0
        assert result["uniform_equivalent_trials"] >= 10 * result["trials"]
        assert "Rare-event estimators" in result["rendered"]

    def test_registered(self):
        assert "rare_event" in EXPERIMENTS


class TestMultifaultExperiment:
    def test_per_k_coverage_table(self):
        from repro.eval.experiments import experiment_multifault

        result = experiment_multifault(workload="and2", max_faults=2, backend="batched")
        assert result["budget_violations"] == 0
        hamming = result["coverage_rows"]["ecim/hamming"]
        bch = result["coverage_rows"]["ecim/bch-t2"]
        assert [row["k"] for row in hamming] == [1, 2]
        # k = 1: full coverage on both schemes (the classic SEP guarantee).
        assert hamming[0]["coverage"] == bch[0]["coverage"] == 1.0
        # k = 2: the Hamming budget breaks, BCH t=2 restores full coverage.
        assert hamming[1]["coverage"] < 1.0
        assert bch[1]["coverage"] == 1.0
        assert bch[1]["sep_guaranteed"] == bch[1]["combinations"]
        assert "Multi-fault sweep" in result["rendered"]


class TestBurstExperiment:
    def test_burst_sweep_rows_and_series(self):
        from repro.eval.experiments import experiment_burst

        result = experiment_burst(
            workload="dot2",
            schemes=("ecim", "trim"),
            burst_lengths=(1, 3),
            gate_error_rate=5e-3,
            trials=120,
            seed=2,
            backend="batched",
        )
        assert result["burst_lengths"] == [1, 3]
        rows = result["rows"]
        assert len(rows) == 4  # two schemes x two lengths
        for row in rows:
            assert 0.0 <= row["silent_corruption_rate"] <= 1.0
            assert row["counts"]["trials"] == 120
            assert row["counts"]["faults_injected"] > 0
        assert "Burst sweep" in result["rendered"]
        assert "ecim silent rate" in result["rendered"]

    def test_burst_experiment_registered_and_backendable(self):
        import inspect

        from repro.eval.experiments import EXPERIMENTS

        assert "burst" in EXPERIMENTS
        assert "backend" in inspect.signature(EXPERIMENTS["burst"]).parameters

    def test_burst_length_one_reduces_to_independent_flips(self):
        # A burst of one is the stochastic baseline: byte-identical to the
        # stochastic fault model at the same trigger rate and seeds.
        from repro.campaign.workloads import get_campaign_workload
        from repro.core.backend import derive_seed, make_backend
        from repro.core.batched import sample_input_matrix
        from repro.pim.faults import FaultModelSpec

        netlist = get_campaign_workload("dot2").netlist
        backend = make_backend("batched", netlist, "ecim")
        seeds = [derive_seed(4, t, "faults") for t in range(60)]
        inputs = sample_input_matrix(
            netlist, [derive_seed(4, t, "inputs") for t in range(60)]
        )
        burst = backend.run_trials(
            inputs,
            fault_model=FaultModelSpec.burst(1, 4, gate_error_rate=5e-3),
            fault_seeds=seeds,
        )
        stochastic = backend.run_trials(
            inputs,
            fault_model=FaultModelSpec.stochastic(gate_error_rate=5e-3),
            fault_seeds=seeds,
        )
        assert burst.counts() == stochastic.counts()
