"""Tests for the plain-text report rendering helpers."""

from repro.eval.report import format_mapping, format_series, format_table, indent


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # All rows are padded to the same width.
        assert len(set(len(line.rstrip()) <= len(lines[1]) for line in lines)) >= 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]], float_digits=3)
        assert "3.142" in text

    def test_booleans_and_none(self):
        text = format_table(["a", "b", "c"], [[True, False, None]])
        assert "yes" in text and "no" in text and "-" in text


class TestFormatMapping:
    def test_alignment(self):
        text = format_mapping({"short": 1, "a longer key": 2.5}, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert all(":" in line for line in lines[1:])

    def test_empty_mapping(self):
        assert format_mapping({}) == ""


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series("x", [1, 2, 3], {"a": [10, 20, 30], "b": [0.1, 0.2, 0.3]})
        lines = text.splitlines()
        assert lines[0].split()[:3] == ["x", "a", "b"]
        assert len(lines) == 2 + 3


class TestIndent:
    def test_indents_every_line(self):
        text = indent("a\nb", prefix="> ")
        assert text == "> a\n> b"
