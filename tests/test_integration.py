"""End-to-end integration tests: compile → execute → protect → check → evaluate.

These tests cross module boundaries on purpose: they exercise the same flows
the examples and the benchmark harness use, on instances small enough for the
bit-exact executors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CircuitBuilder, GreedyAllocator, InstructionEncoder, Netlist, RowScheduler
from repro.core import (
    EcimExecutor,
    EcimScheme,
    TrimExecutor,
    TrimScheme,
    UnprotectedExecutor,
    UnprotectedScheme,
    exhaustive_single_fault_injection,
)
from repro.eval import EvaluationModel, run_experiment
from repro.pim import STT_MRAM, FaultModel, StochasticFaultInjector
from repro.workloads import (
    accumulator_bits,
    fft_input_assignment,
    fft_netlist,
    fft_outputs_to_spectrum,
    fft_reference,
    get_workload,
    matmul_input_assignment,
    matmul_netlist,
    matmul_output_matrix,
    matmul_reference,
)


def small_multiplier():
    builder = CircuitBuilder()
    a = builder.input_word(3, "a")
    b = builder.input_word(3, "b")
    builder.mark_output_word(builder.multiply_wallace(a, b), "p")
    return builder.netlist, a, b


class TestCompileAndExecuteFlow:
    def test_full_compiler_pipeline(self):
        netlist, _, _ = small_multiplier()
        schedule = RowScheduler(n_partitions=4).schedule(netlist)
        allocation = GreedyAllocator(capacity=netlist.n_signals + 8).allocate(netlist)
        columns = dict(allocation.cell_of_signal)
        columns[Netlist.CONST_ZERO] = 250
        columns[Netlist.CONST_ONE] = 251
        instructions = InstructionEncoder(STT_MRAM).encode_schedule(netlist, schedule, columns)
        assert len(instructions) == netlist.stats().n_gates
        assert schedule.n_gates == netlist.stats().n_gates

    @given(st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=8, deadline=None)
    def test_multiplier_protected_executions_agree(self, a, b):
        netlist, a_sigs, b_sigs = small_multiplier()
        inputs = {s: (a >> i) & 1 for i, s in enumerate(a_sigs)}
        inputs.update({s: (b >> i) & 1 for i, s in enumerate(b_sigs)})
        golden = netlist.evaluate_outputs(inputs)
        for executor_cls in (UnprotectedExecutor, EcimExecutor, TrimExecutor):
            report = executor_cls(netlist).run(dict(inputs))
            assert report.outputs == golden


class TestProtectedWorkloads:
    def test_protected_2x2_matmul(self):
        netlist = matmul_netlist(2, operand_bits=2)
        a = [[3, 1], [2, 2]]
        b = [[1, 0], [3, 2]]
        inputs = matmul_input_assignment(netlist, a, b, operand_bits=2)
        report = EcimExecutor(netlist).run(inputs)
        assert report.outputs_correct
        width = accumulator_bits(2, 2)
        assert np.array_equal(
            matmul_output_matrix(netlist, report.outputs, 2, width), matmul_reference(a, b)
        )

    def test_protected_fft4(self):
        bits = 4
        netlist = fft_netlist(4, bits)
        samples = [1, 5, 3, 7]
        inputs = fft_input_assignment(netlist, samples, bits)
        report = TrimExecutor(netlist).run(inputs)
        assert report.outputs_correct
        assert fft_outputs_to_spectrum(netlist, report.outputs, 4, bits) == fft_reference(
            samples, bits
        )

    @pytest.mark.parametrize("faulty_operation", [5, 50, 150, 300])
    def test_ecim_corrects_faults_during_matmul(self, faulty_operation):
        from repro.pim import DeterministicFaultInjector

        a = [[1, 2], [3, 1]]
        b = [[2, 2], [1, 0]]
        injector = DeterministicFaultInjector(target_operations={faulty_operation: 1})
        netlist = matmul_netlist(2, operand_bits=2)
        inputs = matmul_input_assignment(netlist, a, b, operand_bits=2)
        report = EcimExecutor(netlist, fault_injector=injector).run(inputs)
        assert injector.log.count() == 1
        assert report.outputs_correct

    def test_ecim_under_low_stochastic_error_rate(self):
        netlist = matmul_netlist(2, operand_bits=2)
        a = [[1, 2], [3, 1]]
        b = [[2, 2], [1, 0]]
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=0.0005), seed=3)
        inputs = matmul_input_assignment(netlist, a, b, operand_bits=2)
        report = EcimExecutor(netlist, fault_injector=injector).run(inputs)
        # SEP only promises correction of one error per logic level; when the
        # stochastic draw stays within that budget the result must be exact.
        faults_per_level = {}
        for event in injector.log.events:
            faults_per_level[event.operation_index] = faults_per_level.get(event.operation_index, 0)
        if injector.log.count() <= 1:
            assert report.outputs_correct


class TestSepOnArithmeticCircuit:
    def test_exhaustive_sep_on_small_adder(self):
        def build():
            builder = CircuitBuilder()
            x = builder.input_word(2, "x")
            y = builder.input_word(2, "y")
            total, carry = builder.ripple_adder(x, y)
            builder.mark_output_word(total)
            builder.mark_output_bit(carry)
            return builder.netlist

        netlist = build()
        inputs = {netlist.inputs[0]: 1, netlist.inputs[1]: 1, netlist.inputs[2]: 0, netlist.inputs[3]: 1}

        analysis = exhaustive_single_fault_injection(
            lambda injector: EcimExecutor(build(), fault_injector=injector), inputs
        )
        assert analysis.total_sites > 50
        assert analysis.sep_guaranteed


class TestEvaluationPipeline:
    def test_workload_to_overhead_pipeline(self):
        model = EvaluationModel()
        spec = get_workload("mm8")
        ecim = model.compare(spec, EcimScheme(), "stt")
        trim = model.compare(spec, TrimScheme(), "stt")
        unprotected = model.evaluate_design(spec, UnprotectedScheme(), "stt")
        assert ecim.baseline.total_energy_fj == pytest.approx(unprotected.total_energy_fj)
        assert ecim.protected.total_energy_fj > unprotected.total_energy_fj
        assert trim.protected.n_reclaims > ecim.protected.n_reclaims

    def test_fig7_and_table4_are_consistent(self):
        # The reclaim counts reported by Table IV drive part of the Fig. 7
        # time overhead; both must come from the same model state.
        table4 = run_experiment("table4", benchmarks=("mm8", "fft8"))
        fig7 = run_experiment("fig7", benchmarks=("mm8", "fft8"))
        assert set(table4["reclaims"]) == set(fig7["benchmarks"])
        for series in fig7["time_overhead_percent"].values():
            assert all(value >= 0.0 for value in series)
