"""Tests for the dense matrix-multiplication benchmark (mm8-mm64)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import UnprotectedExecutor
from repro.errors import UnknownWorkloadError
from repro.workloads.base import get_workload
from repro.workloads.matmul import (
    PAPER_MATMUL_SIZES,
    accumulator_bits,
    cpa_finalize_netlist,
    dot_product_netlist,
    mac_block_netlist,
    matmul_input_assignment,
    matmul_netlist,
    matmul_output_matrix,
    matmul_reference,
    matmul_spec,
)


class TestAccumulatorSizing:
    def test_headroom_for_dot_product(self):
        # n products of b-bit operands never overflow the accumulator.
        for n, bits in [(8, 8), (64, 8), (4, 2)]:
            width = accumulator_bits(n, bits)
            assert n * ((1 << bits) - 1) ** 2 < (1 << width)

    def test_invalid_parameters(self):
        with pytest.raises(UnknownWorkloadError):
            accumulator_bits(0, 8)


class TestFunctionalNetlists:
    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_2x2_matmul_matches_numpy(self, a00, a01, a10, a11):
        netlist = matmul_netlist(2, operand_bits=2)
        a = [[a00, a01], [a10, a11]]
        b = [[a11, a00], [a01, a10]]
        inputs = matmul_input_assignment(netlist, a, b, operand_bits=2)
        outputs = netlist.evaluate_outputs(inputs)
        width = accumulator_bits(2, 2)
        assert np.array_equal(
            matmul_output_matrix(netlist, outputs, 2, width), matmul_reference(a, b)
        )

    def test_2x2_matmul_on_pim_array(self):
        netlist = matmul_netlist(2, operand_bits=2)
        a = [[1, 2], [3, 0]]
        b = [[2, 1], [1, 3]]
        inputs = matmul_input_assignment(netlist, a, b, operand_bits=2)
        report = UnprotectedExecutor(netlist).run(inputs)
        assert report.outputs_correct
        width = accumulator_bits(2, 2)
        assert np.array_equal(
            matmul_output_matrix(netlist, report.outputs, 2, width), matmul_reference(a, b)
        )

    def test_dot_product_netlist(self):
        netlist = dot_product_netlist(length=3, operand_bits=3)
        a_vals = [3, 5, 7]
        b_vals = [2, 4, 1]
        values = []
        for value in a_vals + b_vals:
            values.extend((value >> i) & 1 for i in range(3))
        inputs = dict(zip(netlist.inputs, values))
        outputs = netlist.evaluate_outputs(inputs)
        result = sum(bit << i for i, bit in enumerate(outputs.values()))
        assert result == sum(x * y for x, y in zip(a_vals, b_vals))

    def test_matmul_netlist_rejects_large_instances(self):
        with pytest.raises(UnknownWorkloadError):
            matmul_netlist(8, operand_bits=8)

    def test_input_assignment_validates_range(self):
        netlist = matmul_netlist(2, operand_bits=2)
        with pytest.raises(UnknownWorkloadError):
            matmul_input_assignment(netlist, [[9, 0], [0, 0]], [[0, 0], [0, 0]], 2)


class TestUnitBlocks:
    def test_mac_block_has_wide_levels(self):
        netlist = mac_block_netlist(8, accumulator_bits(8, 8))
        stats = netlist.stats()
        assert stats.max_level_width >= 8
        assert stats.n_gates > 100

    def test_cpa_finalize_outputs_full_width(self):
        width = accumulator_bits(8, 8)
        netlist = cpa_finalize_netlist(width)
        assert len(netlist.outputs) == width


class TestWorkloadSpecs:
    @pytest.mark.parametrize("size", PAPER_MATMUL_SIZES)
    def test_registered_benchmarks(self, size):
        spec = get_workload(f"mm{size}")
        assert spec.family == "mm"
        assert spec.size == size
        assert spec.total_gates > 0
        assert spec.n_levels > 0

    def test_gate_count_scales_linearly_with_dot_product_length(self):
        small = matmul_spec(8)
        large = matmul_spec(64)
        assert large.total_gates > 7 * small.total_gates

    def test_rows_used_is_output_count(self):
        assert matmul_spec(16).row_footprint.rows_used == 256

    def test_footprint_fits_row_budget(self):
        for size in PAPER_MATMUL_SIZES:
            assert matmul_spec(size).row_footprint.data_columns < 256

    def test_summary_keys(self):
        summary = matmul_spec(8).summary()
        assert summary["name"] == "mm8"
        assert summary["gates"] == matmul_spec(8).total_gates

    def test_invalid_size(self):
        with pytest.raises(UnknownWorkloadError):
            matmul_spec(1)
