"""Tests for the workload-spec plumbing (level groups, registry, block measurement)."""

import pytest

from repro.core.protection import LevelProfile
from repro.errors import UnknownWorkloadError
from repro.workloads import PAPER_BENCHMARKS
from repro.workloads.base import (
    LevelGroup,
    available_workloads,
    block_level_profiles,
    block_summary,
    get_workload,
    register_workload,
    repeat_groups,
)
from repro.workloads.matmul import mac_block_netlist


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        names = available_workloads()
        for benchmark in PAPER_BENCHMARKS:
            assert benchmark in names

    def test_twelve_paper_benchmarks(self):
        assert len(PAPER_BENCHMARKS) == 12

    def test_lookup_is_case_insensitive(self):
        assert get_workload("MM8").name == "mm8"

    def test_unknown_workload(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("transformer")

    def test_register_custom_workload(self):
        spec = get_workload("mm8")
        register_workload("custom-mm8", lambda: spec)
        assert get_workload("custom-mm8").name == "mm8"


class TestLevelGroups:
    def test_group_validation(self):
        with pytest.raises(UnknownWorkloadError):
            LevelGroup(LevelProfile(1), count=0)

    def test_repeat_groups_merges_adjacent_identical_profiles(self):
        profile = LevelProfile(n_nor_gates=3)
        groups = (LevelGroup(profile, 2),)
        repeated = repeat_groups(groups, 3)
        assert len(repeated) == 1
        assert repeated[0].count == 6

    def test_repeat_groups_preserves_distinct_profiles(self):
        a = LevelGroup(LevelProfile(n_nor_gates=3), 1)
        b = LevelGroup(LevelProfile(n_nor_gates=5), 1)
        repeated = repeat_groups((a, b), 2)
        assert sum(g.count for g in repeated) == 4

    def test_repeat_requires_positive_count(self):
        with pytest.raises(UnknownWorkloadError):
            repeat_groups((LevelGroup(LevelProfile(1)),), 0)


class TestBlockMeasurement:
    def test_block_profiles_match_netlist_stats(self):
        netlist = mac_block_netlist(4, 12)
        groups = block_level_profiles("test-mac-4-12", lambda: mac_block_netlist(4, 12))
        stats = netlist.stats()
        assert sum(g.count for g in groups) == stats.n_levels
        assert sum(g.profile.n_gates * g.count for g in groups) == stats.n_gates

    def test_block_profiles_cached(self):
        calls = []

        def build():
            calls.append(1)
            return mac_block_netlist(4, 12)

        block_level_profiles("cache-test-mac", build)
        block_level_profiles("cache-test-mac", build)
        assert len(calls) == 1

    def test_block_summary(self):
        groups = block_level_profiles("summary-mac", lambda: mac_block_netlist(4, 12))
        totals = block_summary(groups)
        assert totals["gates"] == totals["claims"]
        assert totals["levels"] > 0


class TestSpecAggregates:
    def test_totals_consistent(self):
        spec = get_workload("mm8")
        assert spec.total_gates == spec.total_nor_gates + spec.total_thr_gates
        assert spec.n_levels == sum(g.count for g in spec.level_groups)
        assert spec.average_level_width == pytest.approx(spec.total_gates / spec.n_levels)

    def test_iter_levels(self):
        spec = get_workload("fft8")
        assert sum(count for _, count in ((g.profile, g.count) for g in spec.iter_levels())) == spec.n_levels
