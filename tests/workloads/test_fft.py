"""Tests for the FFT benchmark (fft8-fft64)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import UnprotectedExecutor
from repro.errors import UnknownWorkloadError
from repro.workloads.base import get_workload
from repro.workloads.fft import (
    PAPER_FFT_SIZES,
    butterfly_block_netlist,
    fft_input_assignment,
    fft_netlist,
    fft_outputs_to_spectrum,
    fft_reference,
    fft_spec,
)


class TestButterflyBlock:
    def test_block_structure(self):
        netlist = butterfly_block_netlist(bits=4)
        stats = netlist.stats()
        assert stats.n_gates > 100
        assert stats.max_level_width >= 4
        assert len(netlist.outputs) == 4 * 4  # four 4-bit words

    def test_butterfly_functional(self):
        bits = 4
        mask = (1 << bits) - 1
        netlist = butterfly_block_netlist(bits)
        a_re, a_im, b_re, b_im, w_re, w_im = 3, 1, 2, 0, 1, 0  # w = 1
        values = []
        for value in (a_re, a_im, b_re, b_im, w_re, w_im):
            values.extend((value >> i) & 1 for i in range(bits))
        outputs = netlist.evaluate_outputs(dict(zip(netlist.inputs, values)))
        bit_list = list(outputs.values())
        words = [
            sum(bit << i for i, bit in enumerate(bit_list[k * bits : (k + 1) * bits]))
            for k in range(4)
        ]
        top_re, top_im, bot_re, bot_im = words
        assert top_re == (a_re + b_re) & mask
        assert top_im == (a_im + b_im) & mask
        assert bot_re == (a_re - b_re) & mask
        assert bot_im == (a_im - b_im) & mask

    def test_invalid_precision(self):
        with pytest.raises(UnknownWorkloadError):
            butterfly_block_netlist(bits=1)


class TestFunctionalFft:
    @given(st.lists(st.integers(0, 15), min_size=4, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_fft4_matches_reference(self, samples):
        bits = 4
        netlist = fft_netlist(4, bits)
        inputs = fft_input_assignment(netlist, samples, bits)
        outputs = netlist.evaluate_outputs(inputs)
        assert fft_outputs_to_spectrum(netlist, outputs, 4, bits) == fft_reference(samples, bits)

    def test_fft2(self):
        bits = 4
        netlist = fft_netlist(2, bits)
        samples = [5, 3]
        inputs = fft_input_assignment(netlist, samples, bits)
        outputs = netlist.evaluate_outputs(inputs)
        assert fft_outputs_to_spectrum(netlist, outputs, 2, bits) == [(8, 0), (2, 0)]

    def test_fft4_dc_input(self):
        bits = 5
        netlist = fft_netlist(4, bits)
        inputs = fft_input_assignment(netlist, [7, 7, 7, 7], bits)
        spectrum = fft_outputs_to_spectrum(netlist, netlist.evaluate_outputs(inputs), 4, bits)
        assert spectrum[0] == (28, 0)
        assert spectrum[1] == (0, 0)
        assert spectrum[2] == (0, 0)
        assert spectrum[3] == (0, 0)

    def test_fft4_runs_on_pim_array(self):
        bits = 3
        netlist = fft_netlist(4, bits)
        inputs = fft_input_assignment(netlist, [1, 2, 3, 4], bits)
        report = UnprotectedExecutor(netlist).run(inputs)
        assert report.outputs_correct

    def test_unsupported_sizes_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            fft_netlist(8)
        with pytest.raises(UnknownWorkloadError):
            fft_reference([1] * 8, 4)


class TestWorkloadSpecs:
    @pytest.mark.parametrize("size", PAPER_FFT_SIZES)
    def test_registered_benchmarks(self, size):
        spec = get_workload(f"fft{size}")
        assert spec.family == "fft"
        assert spec.size == size

    def test_per_row_program_scales_with_stage_count(self):
        # log2(64) / log2(8) = 2x the butterfly blocks per row.
        assert fft_spec(64).total_gates == pytest.approx(2 * fft_spec(8).total_gates, rel=0.01)

    def test_rows_used_is_half_the_points(self):
        assert fft_spec(32).row_footprint.rows_used == 16

    def test_non_power_of_two_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            fft_spec(12)

    def test_footprint_fits_row_budget(self):
        for size in PAPER_FFT_SIZES:
            assert fft_spec(size).row_footprint.data_columns < 256
