"""Tests for the synthetic MNIST dataset and quantisation helpers."""

import numpy as np
import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.datasets import (
    dequantize_unsigned,
    make_synthetic_mnist,
    quantize_unsigned,
    quantize_weights,
)


class TestSyntheticMnist:
    def test_shapes(self):
        dataset = make_synthetic_mnist(n_samples=64, side=8, n_classes=10)
        assert dataset.images.shape == (64, 64)
        assert dataset.labels.shape == (64,)
        assert dataset.n_features == 64
        assert dataset.side == 8

    def test_deterministic_for_fixed_seed(self):
        a = make_synthetic_mnist(n_samples=32, seed=5)
        b = make_synthetic_mnist(n_samples=32, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_mnist(n_samples=32, seed=1)
        b = make_synthetic_mnist(n_samples=32, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_pixel_range(self):
        dataset = make_synthetic_mnist(n_samples=16)
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() <= 255.0

    def test_labels_cover_multiple_classes(self):
        dataset = make_synthetic_mnist(n_samples=200, n_classes=10)
        assert len(set(dataset.labels.tolist())) >= 5

    def test_class_structure_is_learnable(self):
        # Nearest-centroid classification on the synthetic data should beat
        # chance by a wide margin — the dataset is a meaningful stand-in.
        dataset = make_synthetic_mnist(n_samples=400, side=8, n_classes=4)
        train, test = dataset.split(0.75)
        centroids = np.stack(
            [train.images[train.labels == c].mean(axis=0) for c in range(4)]
        )
        distances = ((test.images[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == test.labels).mean()
        assert accuracy > 0.6

    def test_split(self):
        dataset = make_synthetic_mnist(n_samples=100)
        train, test = dataset.split(0.8)
        assert train.n_samples == 80
        assert test.n_samples == 20

    def test_invalid_parameters(self):
        with pytest.raises(UnknownWorkloadError):
            make_synthetic_mnist(n_samples=5, n_classes=10)
        with pytest.raises(UnknownWorkloadError):
            make_synthetic_mnist(side=2)
        with pytest.raises(UnknownWorkloadError):
            make_synthetic_mnist().split(1.5)


class TestQuantisation:
    def test_quantize_range(self):
        values = np.array([0.0, 127.5, 255.0])
        codes = quantize_unsigned(values, bits=4, max_value=255.0)
        assert codes.tolist() == [0, 8, 15]

    def test_roundtrip_error_bounded(self):
        values = np.linspace(0, 100, 50)
        codes = quantize_unsigned(values, bits=6, max_value=100.0)
        restored = dequantize_unsigned(codes, bits=6, max_value=100.0)
        assert np.abs(restored - values).max() <= 100.0 / 63 / 2 + 1e-9

    def test_all_zero_input(self):
        assert quantize_unsigned(np.zeros(4), bits=3).tolist() == [0, 0, 0, 0]

    def test_invalid_bits(self):
        with pytest.raises(UnknownWorkloadError):
            quantize_unsigned(np.ones(3), bits=0)

    def test_weight_quantisation_sign_magnitude(self):
        weights = np.array([[-1.0, 0.5], [0.25, -0.75]])
        codes, signs = quantize_weights(weights, bits=2)
        assert signs.tolist() == [[-1, 1], [1, -1]]
        assert codes.max() <= 3
        assert codes[0, 0] == 3  # largest magnitude maps to the top code
