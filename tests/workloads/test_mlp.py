"""Tests for the MNIST MLP benchmark (mnist1-mnist4)."""

import numpy as np
import pytest

from repro.core.executor import UnprotectedExecutor
from repro.errors import UnknownWorkloadError
from repro.workloads.base import get_workload
from repro.workloads.matmul import accumulator_bits
from repro.workloads.mlp import (
    PAPER_WEIGHT_PRECISIONS,
    MlpConfig,
    generate_prototype_weights,
    mlp_inference_reference,
    mlp_input_assignment,
    mlp_netlist,
    mlp_outputs_to_scores,
    mlp_spec,
)


SMALL_CONFIG = MlpConfig(input_size=9, hidden_size=2, n_classes=2, weight_bits=2, activation_bits=2)


class TestConfig:
    def test_paper_configuration(self):
        spec = mlp_spec(2)
        assert spec.name == "mnist2"
        assert spec.family == "mnist"

    def test_invalid_config(self):
        with pytest.raises(UnknownWorkloadError):
            MlpConfig(input_size=0)
        with pytest.raises(UnknownWorkloadError):
            MlpConfig(weight_bits=0)


class TestWorkloadSpecs:
    @pytest.mark.parametrize("bits", PAPER_WEIGHT_PRECISIONS)
    def test_registered_benchmarks(self, bits):
        spec = get_workload(f"mnist{bits}")
        assert spec.size == bits
        assert spec.total_gates > 0

    def test_gate_count_grows_with_weight_precision(self):
        counts = [mlp_spec(bits).total_gates for bits in PAPER_WEIGHT_PRECISIONS]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_rows_used_is_neuron_count(self):
        spec = mlp_spec(1)
        assert spec.row_footprint.rows_used == 64 + 10

    def test_mlp_larger_than_matmul_benchmarks(self):
        # The MLP rows run 784-term dot products, so the per-row program (and
        # hence Table IV's reclaim counts) dwarfs the matmul benchmarks.
        from repro.workloads.matmul import matmul_spec

        assert mlp_spec(1).row_footprint.scratch_claims > matmul_spec(64).row_footprint.scratch_claims

    def test_footprint_fits_row_budget(self):
        for bits in PAPER_WEIGHT_PRECISIONS:
            assert mlp_spec(bits).row_footprint.data_columns < 256


class TestPrototypeWeights:
    def test_shapes_and_ranges(self):
        w1, w2 = generate_prototype_weights(SMALL_CONFIG, side=3)
        assert w1.shape == (2, 9)
        assert w2.shape == (2, 2)
        assert w1.max() < (1 << SMALL_CONFIG.weight_bits)
        assert w1.min() >= 0

    def test_side_mismatch_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            generate_prototype_weights(SMALL_CONFIG, side=5)

    def test_tie_break_perturbs_off_routing_entries(self):
        # Regression: the tie-break used to draw from rng.integers(0, 1, ...)
        # — always zero — so the output layer's off-routing entries stayed
        # identically 0 and distinct classes could share exact scores.
        config = MlpConfig(
            input_size=16, hidden_size=4, n_classes=4, weight_bits=2, activation_bits=2
        )
        levels = (1 << config.weight_bits) - 1
        _, w2 = generate_prototype_weights(config, side=4)
        on_routing = np.eye(config.n_classes, dtype=bool)
        assert np.all(w2[on_routing] == levels)  # routing untouched
        assert w2[~on_routing].max() > 0  # the perturbation actually fires
        assert w2.min() >= 0 and w2.max() <= levels  # documented range holds

    def test_every_synthetic_image_has_strict_argmax_winner(self):
        # The application-campaign oracle must yield an unambiguous predicted
        # class for the dataset the mlp16 example classifies.
        from repro.workloads.datasets import make_synthetic_mnist, quantize_unsigned

        config = MlpConfig(
            input_size=16, hidden_size=4, n_classes=4, weight_bits=2, activation_bits=2
        )
        w1, w2 = generate_prototype_weights(config, side=4)
        hidden_acc = accumulator_bits(config.input_size, config.weight_bits)
        out_acc = accumulator_bits(config.hidden_size, max(config.weight_bits, hidden_acc))
        dataset = make_synthetic_mnist(n_samples=240, side=4, n_classes=4, seed=9)
        activations = quantize_unsigned(
            dataset.images, config.activation_bits, max_value=255.0
        )
        for row in activations:
            scores = mlp_inference_reference(row, w1, w2, (hidden_acc, out_acc))
            ranked = np.sort(scores)
            assert ranked[-1] > ranked[-2], scores


class TestFunctionalMlp:
    @pytest.fixture(scope="class")
    def compiled(self):
        w1, w2 = generate_prototype_weights(SMALL_CONFIG, side=3)
        netlist = mlp_netlist(SMALL_CONFIG, w1, w2)
        return netlist, w1, w2

    def test_netlist_matches_integer_reference(self, compiled):
        netlist, w1, w2 = compiled
        hidden_acc = accumulator_bits(SMALL_CONFIG.input_size, 2)
        out_acc = accumulator_bits(SMALL_CONFIG.hidden_size, max(2, hidden_acc))
        activations = np.array([0, 1, 2, 3, 0, 1, 2, 3, 1])
        inputs = mlp_input_assignment(netlist, activations, SMALL_CONFIG.activation_bits)
        outputs = netlist.evaluate_outputs(inputs)
        scores = mlp_outputs_to_scores(netlist, outputs, SMALL_CONFIG.n_classes)
        expected = mlp_inference_reference(activations, w1, w2, (hidden_acc, out_acc))
        assert np.array_equal(scores, expected)

    def test_netlist_runs_on_pim_array(self, compiled):
        netlist, w1, w2 = compiled
        activations = np.array([3, 3, 3, 0, 0, 0, 1, 1, 1])
        inputs = mlp_input_assignment(netlist, activations, SMALL_CONFIG.activation_bits)
        report = UnprotectedExecutor(netlist).run(inputs)
        assert report.outputs_correct

    def test_wrong_weight_shapes_rejected(self):
        w1, w2 = generate_prototype_weights(SMALL_CONFIG, side=3)
        with pytest.raises(UnknownWorkloadError):
            mlp_netlist(SMALL_CONFIG, w1[:1], w2)

    def test_large_configs_rejected_for_functional_form(self):
        big = MlpConfig()
        w1 = np.zeros((big.hidden_size, big.input_size), dtype=np.int64)
        w2 = np.zeros((big.n_classes, big.hidden_size), dtype=np.int64)
        with pytest.raises(UnknownWorkloadError):
            mlp_netlist(big, w1, w2)

    def test_activation_out_of_range_rejected(self, compiled):
        netlist, _, _ = compiled
        with pytest.raises(UnknownWorkloadError):
            mlp_input_assignment(netlist, [9] * 9, 2)

    def test_outputs_to_scores_rejects_uneven_split(self, compiled):
        # Regression: n_classes that doesn't divide the output width used to
        # silently truncate the trailing bits into a short (garbage) word.
        netlist, _, _ = compiled
        inputs = mlp_input_assignment(netlist, [0] * 9, SMALL_CONFIG.activation_bits)
        outputs = netlist.evaluate_outputs(inputs)
        assert len(netlist.outputs) % 3 != 0
        with pytest.raises(UnknownWorkloadError, match="equal-width score words"):
            mlp_outputs_to_scores(netlist, outputs, 3)
        with pytest.raises(UnknownWorkloadError, match="equal-width score words"):
            mlp_outputs_to_scores(netlist, outputs, 0)
