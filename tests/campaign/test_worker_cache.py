"""Per-process executor/plan cache: bounded size, eviction, explicit clear.

Long multi-cell campaigns used to accumulate one executor per distinct cell
configuration for the life of each worker process; the caches are now LRU
maps capped at ``CACHE_LIMIT`` entries.
"""

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.worker import (
    CACHE_LIMIT,
    _EXECUTOR_CACHE,
    _PLAN_CACHE,
    _executor_for,
    _plan_for,
    clear_executor_cache,
)


def distinct_cells(n):
    """More than CACHE_LIMIT cheap, distinct cell configurations."""
    cells = []
    for workload in ("and2", "dot2"):
        for scheme in ("unprotected", "ecim", "trim"):
            for technology in ("stt", "sot", "reram"):
                for multi_output in (True, False):
                    cells.append(
                        CampaignCell(
                            workload=workload,
                            scheme=scheme,
                            technology=technology,
                            gate_error_rate=1e-3,
                            multi_output=multi_output,
                        )
                    )
    assert len(cells) >= n
    return cells[:n]


class TestExecutorCacheBound:
    def test_cache_never_exceeds_limit(self):
        clear_executor_cache()
        for cell in distinct_cells(CACHE_LIMIT + 5):
            _executor_for(cell)
            assert len(_EXECUTOR_CACHE) <= CACHE_LIMIT
        clear_executor_cache()

    def test_least_recently_used_entry_evicted_first(self):
        clear_executor_cache()
        cells = distinct_cells(CACHE_LIMIT + 1)
        first = _executor_for(cells[0])
        for cell in cells[1:CACHE_LIMIT]:
            _executor_for(cell)
        # Refresh the oldest entry, then overflow: the *second*-oldest must
        # be the victim and the refreshed one must survive.
        assert _executor_for(cells[0]) is first
        _executor_for(cells[CACHE_LIMIT])
        assert len(_EXECUTOR_CACHE) == CACHE_LIMIT
        assert _executor_for(cells[0]) is first
        clear_executor_cache()

    def test_hit_returns_same_instance(self):
        clear_executor_cache()
        cell = distinct_cells(1)[0]
        assert _executor_for(cell) is _executor_for(cell)
        clear_executor_cache()


class TestPlanCacheBound:
    def test_plan_cache_bounded_and_technology_independent(self):
        clear_executor_cache()
        cells = distinct_cells(CACHE_LIMIT + 5)
        for cell in cells:
            _plan_for(cell)
            assert len(_PLAN_CACHE) <= CACHE_LIMIT
        # stt and sot variants of the same (workload, scheme, style) share
        # one compiled plan.
        clear_executor_cache()
        stt = CampaignCell("and2", "ecim", "stt", 1e-3)
        sot = CampaignCell("and2", "ecim", "sot", 1e-3)
        assert _plan_for(stt) is _plan_for(sot)
        clear_executor_cache()


class TestClear:
    def test_clear_empties_both_caches(self):
        cell = distinct_cells(1)[0]
        _executor_for(cell)
        _plan_for(cell)
        assert _EXECUTOR_CACHE and _PLAN_CACHE
        clear_executor_cache()
        assert not _EXECUTOR_CACHE
        assert not _PLAN_CACHE

    def test_campaign_spec_round_trip_still_valid_after_clear(self):
        # Guard: clearing caches must not break the next shard run.
        from repro.campaign.worker import run_shard

        clear_executor_cache()
        task = CampaignSpec(
            workloads=("and2",), schemes=("ecim",), gate_error_rates=(1e-3,),
            trials=5, shard_size=5, seed=1,
        ).shards()[0]
        assert run_shard(task).counts["trials"] == 5
