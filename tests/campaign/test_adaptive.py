"""Tests for the rare-event estimator stack (``repro.campaign.adaptive``).

Covers the estimator grammar, the stratified allocation/plan machinery, the
importance-sampling likelihood ratios, and the statistical contracts the
ISSUE pins: estimator agreement with uniform sampling at moderate rates on
every backend, unbiasedness of the Horvitz-Thompson estimator across seeds,
byte-identical stratified counters across backends, and the >= 10x
variance-reduction gain at a 1e-5 rate on dot2+ECiM.
"""

import numpy as np
import pytest

from repro.campaign import CampaignSpec, run_campaign, site_count
from repro.campaign.adaptive.grammar import EstimatorSpec, parse_estimator
from repro.campaign.adaptive.importance import WEIGHT_KEYS, likelihood_ratios
from repro.campaign.adaptive.strata import (
    allocate_trials,
    stratum_labels,
    stratum_probabilities,
)
from repro.errors import EvaluationError
from repro.stats import interval_halfwidth, wilson_interval

BACKENDS = ("scalar", "batched", "bitpacked")


def small_spec(**overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("unprotected",),
        technologies=("rram",),
        gate_error_rates=(1e-2,),
        trials=600,
        shard_size=200,
        seed=5,
        name="adaptive-unit",
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestGrammar:
    @pytest.mark.parametrize(
        "text,canonical",
        [
            ("uniform", "uniform"),
            ("uniform:metric=correct", "uniform:metric=correct"),
            ("importance:rate=1e-3", "importance:rate=0.001"),
            ("importance:rate=0.001,metric=silent_corruption", "importance:rate=0.001"),
            ("importance:metric=detected,rate=1e-2", "importance:rate=0.01,metric=detected"),
            ("stratified", "stratified"),
            ("stratified:k_max=3,allocation=proportional", "stratified"),
            (
                "stratified:allocation=neyman,pilot=100,k_max=2",
                "stratified:k_max=2,allocation=neyman,pilot=100",
            ),
        ],
    )
    def test_canonical_round_trip(self, text, canonical):
        spec = parse_estimator(text)
        assert spec.to_string() == canonical
        assert parse_estimator(canonical) == spec

    @pytest.mark.parametrize(
        "text",
        [
            "bogus",
            "importance",  # rate is mandatory
            "importance:rate=0",
            "importance:rate=1.0",
            "importance:rate=1e-3,k_max=2",  # stratified-only key
            "stratified:rate=1e-3",  # importance-only key
            "stratified:k_max=0",
            "stratified:allocation=optimal",
            "uniform:metric=accuracy",
            "uniform:",
            "importance:rate=1e-3,rate=1e-2",  # duplicate key
        ],
    )
    def test_invalid_strings_raise(self, text):
        with pytest.raises(EvaluationError):
            parse_estimator(text)

    def test_spec_is_frozen_and_validated(self):
        with pytest.raises(EvaluationError):
            EstimatorSpec(kind="importance")  # no rate
        with pytest.raises(EvaluationError):
            EstimatorSpec(kind="stratified", pilot=0)


class TestStrata:
    def test_probabilities_sum_to_one(self):
        for n_sites, rate in [(3, 1e-2), (27, 1e-3), (1702, 1e-5), (10, 0.0)]:
            pi = stratum_probabilities(n_sites, rate, 3)
            assert len(pi) == 5
            assert sum(pi) == pytest.approx(1.0)
            assert all(p >= 0 for p in pi)

    def test_zero_rate_concentrates_at_zero_faults(self):
        pi = stratum_probabilities(100, 0.0, 2)
        assert pi[0] == 1.0 and sum(pi[1:]) == 0.0

    def test_allocation_sums_and_min_one_repair(self):
        pi = stratum_probabilities(27, 1e-3, 2)
        allocation = allocate_trials(pi, 100)
        assert sum(allocation) == 100
        # Every positive-probability stratum gets at least one trial even
        # when its share rounds to zero.
        assert all(n >= 1 for n, p in zip(allocation, pi) if p > 0)

    def test_allocation_is_deterministic(self):
        pi = stratum_probabilities(166, 1e-2, 3)
        assert allocate_trials(pi, 73) == allocate_trials(pi, 73)

    def test_labels(self):
        assert stratum_labels(2) == ("k=0", "k=1", "k=2", "k>2")


class TestLikelihoodRatios:
    def test_equal_rates_give_unit_weights(self):
        counts = np.array([0, 1, 5, 27], dtype=np.int64)
        assert likelihood_ratios(counts, 27, 1e-2, 1e-2).tolist() == [1.0] * 4

    def test_matches_direct_bernoulli_ratio(self):
        p, q, n = 1e-3, 1e-2, 27
        counts = np.array([0, 1, 2], dtype=np.int64)
        weights = likelihood_ratios(counts, n, p, q)
        for f, w in zip(counts, weights):
            direct = (p / q) ** f * ((1 - p) / (1 - q)) ** (n - f)
            assert w == pytest.approx(direct, rel=1e-12)

    def test_zero_target_rate(self):
        counts = np.array([0, 1], dtype=np.int64)
        weights = likelihood_ratios(counts, 10, 0.0, 1e-2)
        assert weights[1] == 0.0 and weights[0] > 1.0

    def test_invalid_rates_raise(self):
        counts = np.array([0], dtype=np.int64)
        with pytest.raises(EvaluationError):
            likelihood_ratios(counts, 10, 1e-2, 0.0)
        with pytest.raises(EvaluationError):
            likelihood_ratios(counts, 10, 1.0, 1e-2)


class TestSiteCount:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_bernoulli_draws_at_rate_one(self, backend):
        # At gate error rate 1.0 every enumerated site flips in every trial,
        # so faults_injected per trial IS the per-trial Bernoulli draw count
        # the likelihood ratio divides by.
        spec = small_spec(gate_error_rates=(1.0,), trials=4, shard_size=4, backend=backend)
        result = run_campaign(spec, workers=0)
        cell = spec.cells()[0]
        counts = result.counts_by_cell[cell.key]
        assert counts["faults_injected"] == 4 * site_count(cell, backend)


class TestEstimatorCampaigns:
    def interval(self, estimator, backend, **overrides):
        spec = small_spec(backend=backend, estimator=estimator, **overrides)
        report = run_campaign(spec, workers=0).reports[0]
        return report.estimate("silent_corruption")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_estimators_agree_with_uniform_at_moderate_rate(self, backend):
        # The acceptance contract: at 1e-2 on and2 the importance (mild
        # tilt) and stratified estimates must land inside overlapping 95%
        # CIs with plain uniform sampling, on every backend.
        _, uniform = self.interval(None, backend)
        for estimator in ("importance:rate=0.03", "stratified:k_max=2"):
            _, interval = self.interval(estimator, backend)
            assert interval[0] <= uniform[1] and uniform[0] <= interval[1], (
                estimator,
                interval,
                uniform,
            )

    def test_uniform_estimator_string_matches_legacy_counters(self):
        # 'uniform' routes through the adaptive driver but must reproduce
        # the fixed driver's counters byte for byte.
        plain = run_campaign(small_spec(), workers=0)
        named = run_campaign(small_spec(estimator="uniform"), workers=0)
        assert named.counts_by_cell == plain.counts_by_cell

    def test_stratified_counters_identical_across_backends(self):
        # Stratified plans are deterministic CSR fault plans, so all three
        # engines must produce byte-identical counters AND strata.
        results = [
            run_campaign(small_spec(backend=b, estimator="stratified:k_max=2"), workers=0)
            for b in BACKENDS
        ]
        for other in results[1:]:
            assert other.counts_by_cell == results[0].counts_by_cell
            assert other.strata_by_cell == results[0].strata_by_cell

    def test_worker_count_invariance_with_weights(self):
        spec = small_spec(estimator="importance:rate=0.03")
        serial = run_campaign(spec, workers=0)
        pooled = run_campaign(spec, workers=2)
        assert serial.counts_by_cell == pooled.counts_by_cell
        assert serial.weights_by_cell == pooled.weights_by_cell

    def test_importance_is_unbiased_across_seeds(self):
        # Horvitz-Thompson unbiasedness, empirically: the mean of 12
        # independent tilted estimates must sit within a few percent of a
        # 20000-trial uniform reference.
        def estimate(estimator, seed, trials):
            spec = small_spec(
                gate_error_rates=(0.02,),
                trials=trials,
                shard_size=trials,
                seed=seed,
                backend="bitpacked",
                estimator=estimator,
            )
            return run_campaign(spec, workers=0).reports[0].estimate("silent_corruption")[0]

        tilted = [estimate("importance:rate=0.05", seed, 400) for seed in range(12)]
        truth = estimate(None, 999, 20000)
        assert np.mean(tilted) == pytest.approx(truth, rel=0.15)

    def test_rare_event_gain_is_at_least_10x(self):
        # The tentpole claim: at a 1e-5 rate on dot2+ECiM the importance
        # campaign's CI half-width would take uniform sampling >= 10x the
        # trial budget to match.
        trials = 2000
        spec = CampaignSpec(
            name="rare",
            workloads=("dot2",),
            schemes=("ecim",),
            technologies=("stt",),
            gate_error_rates=(1e-5,),
            trials=trials,
            shard_size=1000,
            seed=0,
            backend="bitpacked",
            estimator="importance:rate=1e-3,metric=detected_corruption",
        )
        report = run_campaign(spec, workers=0).reports[0]
        mean, interval = report.estimate("detected_corruption")
        halfwidth = interval_halfwidth(interval)
        assert 0.0 < mean < 1e-4  # the event really is rare
        assert halfwidth > 0.0

        def uniform_halfwidth(n):
            return interval_halfwidth(wilson_interval(round(mean * n), n))

        assert uniform_halfwidth(10 * trials) > halfwidth

    def test_effective_sample_size_reported(self):
        spec = small_spec(estimator="importance:rate=0.03")
        report = run_campaign(spec, workers=0).reports[0]
        assert report.effective_sample_size is not None
        assert 0 < report.effective_sample_size <= spec.trials
        uniform = run_campaign(small_spec(), workers=0).reports[0]
        assert uniform.effective_sample_size is None

    def test_neyman_runs_pilot_plus_main_round(self):
        spec = small_spec(
            trials=200, shard_size=100,
            estimator="stratified:k_max=2,allocation=neyman,pilot=100",
        )
        result = run_campaign(spec, workers=0)
        assert result.rounds == 2
        assert result.total_trials == 300  # 100 pilot + 200 main


class TestSpecThreading:
    def test_unset_estimator_keeps_hash_and_dict(self):
        explicit = small_spec(estimator=None)
        assert "estimator" not in explicit.to_dict()
        assert explicit.spec_hash() == small_spec().spec_hash()

    def test_estimator_changes_hash_and_round_trips(self):
        tilted = small_spec(estimator="importance:rate=1e-3")
        assert tilted.spec_hash() != small_spec().spec_hash()
        assert tilted.to_dict()["estimator"] == "importance:rate=0.001"
        assert CampaignSpec.from_dict(tilted.to_dict()) == tilted

    def test_estimator_is_canonicalised_on_construction(self):
        spec = small_spec(estimator="importance:metric=silent_corruption,rate=1e-3")
        assert spec.estimator == "importance:rate=0.001"

    def test_estimator_conflicts_are_rejected(self):
        with pytest.raises(EvaluationError):
            small_spec(estimator="importance:rate=1e-3", faults_per_trial=2)
        with pytest.raises(EvaluationError):
            small_spec(estimator="importance:rate=1e-3", fault_model="burst:length=3,window=8")
        with pytest.raises(EvaluationError):
            small_spec(estimator="stratified", memory_error_rate=1e-3)

    def test_invalid_estimator_string_is_rejected(self):
        with pytest.raises(EvaluationError, match="estimator"):
            small_spec(estimator="bogus:rate=1")

    def test_weight_keys_are_stable(self):
        # The checkpoint format and the store's migration-2 columns both pin
        # this exact tuple; growing it requires a new schema migration.
        assert WEIGHT_KEYS == (
            "weight_sum",
            "weight_sq_sum",
            "w_correct",
            "w_correct_sq",
            "w_detected",
            "w_detected_sq",
            "w_detected_corruption",
            "w_detected_corruption_sq",
            "w_silent_corruption",
            "w_silent_corruption_sq",
        )
