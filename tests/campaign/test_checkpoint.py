"""Tests for the JSONL checkpoint store."""

import contextlib
import json
import warnings

import pytest

from repro.campaign.aggregate import ShardResult, zeroed_counts
from repro.campaign.checkpoint import CheckpointStore


def make_result(cell_key="cell-a", shard=0, trials=5, correct=5):
    counts = zeroed_counts()
    counts.update(trials=trials, correct=correct)
    return ShardResult(cell_key=cell_key, shard_index=shard, counts=counts)


@contextlib.contextmanager
def warnings_as_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


class TestCheckpointStore:
    def test_load_missing_file_is_empty(self, tmp_path):
        store = CheckpointStore(tmp_path / "nope.jsonl")
        assert store.load("abc") == {}

    def test_append_then_load_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.jsonl")
        result = make_result(shard=3)
        store.append("abc", result)
        loaded = store.load("abc")
        assert loaded == {("cell-a", 3): result}

    def test_records_for_other_specs_are_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.jsonl")
        store.append("spec-1", make_result(shard=0))
        store.append("spec-2", make_result(shard=1))
        assert set(store.load("spec-1")) == {("cell-a", 0)}
        assert set(store.load("spec-2")) == {("cell-a", 1)}

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CheckpointStore(path)
        store.append("abc", make_result(shard=0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "abc", "cell": "cell-a", "sha')  # crash mid-write
        assert set(store.load("abc")) == {("cell-a", 0)}

    def test_hand_truncated_trailing_line_warns_and_resumes(self, tmp_path):
        # Regression: a file truncated mid-record (crash during the final
        # append) must load the intact records, warn about the partial one,
        # and never raise json.JSONDecodeError.
        path = tmp_path / "c.jsonl"
        store = CheckpointStore(path)
        store.append("abc", make_result(shard=0))
        store.append("abc", make_result(shard=1))
        full = path.read_text()
        assert full.endswith("\n")
        path.write_text(full[: len(full) - len(full.splitlines()[-1]) // 2 - 1])
        with pytest.warns(UserWarning, match="truncated record"):
            loaded = store.load("abc")
        assert set(loaded) == {("cell-a", 0)}

    def test_intact_file_loads_without_warnings(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.jsonl")
        store.append("abc", make_result(shard=0))
        with warnings_as_errors():
            assert set(store.load("abc")) == {("cell-a", 0)}

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CheckpointStore(path)
        store.append("abc", make_result())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(store.load("abc")) == 1

    def test_duplicate_shard_keeps_first_record(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.jsonl")
        first = make_result(shard=0, correct=5)
        second = make_result(shard=0, correct=4)
        store.append("abc", first)
        store.append("abc", second)
        assert store.load("abc")[("cell-a", 0)] == first

    def test_file_is_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CheckpointStore(path)
        store.append("abc", make_result(shard=0))
        store.append("abc", make_result(shard=1))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["spec_hash"] == "abc"
            assert "counts" in record

    def test_constructor_touches_file_to_fail_fast(self, tmp_path):
        # An unwritable path must fail at store construction, not after the
        # first shard's compute has been spent.
        path = tmp_path / "deep" / "nested" / "c.jsonl"
        store = CheckpointStore(path)
        assert path.exists()
        store.append("abc", make_result())
        assert len(store.load("abc")) == 1

    def test_schema_drifted_record_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "c.jsonl"
        store = CheckpointStore(path)
        store.append("abc", make_result(shard=0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                '{"spec_hash": "abc", "cell": "cell-a", "shard": 1,'
                ' "counts": {"trials": 2, "counter_from_the_future": 9}}\n'
            )
        loaded = store.load("abc")  # must not raise; shard 1 just re-runs
        assert set(loaded) == {("cell-a", 0)}
