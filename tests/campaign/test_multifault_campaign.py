"""Tests for deterministic multi-fault (``faults_per_trial``) campaigns.

Because k-flip plans execute bit-exactly on both backends and site
enumeration is backend-invariant (a PR-3 contract), a ``faults_per_trial``
campaign is the one stochastic-looking configuration whose counters are
byte-identical between the scalar and batched engines — which is exactly
what these tests pin down, alongside seeding determinism and the injected
fault accounting.
"""

import pytest

from repro.campaign.spec import CampaignSpec, ShardTask
from repro.campaign.worker import clear_executor_cache, run_shard
from repro.errors import EvaluationError


def multifault_spec(**overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("ecim", "trim"),
        technologies=("stt",),
        gate_error_rates=(1e-3,),
        trials=24,
        shard_size=8,
        seed=7,
        faults_per_trial=2,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def run_all_shards(spec):
    clear_executor_cache()
    results = {}
    for task in spec.shards():
        result = run_shard(task)
        key = (result.cell_key, result.shard_index)
        assert key not in results
        results[key] = dict(result.counts)
    return results


class TestMultiFaultShards:
    def test_exact_fault_count_per_trial(self):
        spec = multifault_spec()
        for counts in run_all_shards(spec).values():
            assert counts["faults_injected"] == 2 * counts["trials"]
            assert counts["faulty_trials"] == counts["trials"]

    def test_scalar_and_batched_counters_are_identical(self):
        scalar = run_all_shards(multifault_spec(backend="scalar"))
        batched = run_all_shards(multifault_spec(backend="batched"))
        assert scalar.keys() == batched.keys()
        for key in scalar:
            assert scalar[key] == batched[key], key

    def test_reruns_are_deterministic(self):
        spec = multifault_spec(backend="batched")
        assert run_all_shards(spec) == run_all_shards(spec)

    def test_k1_differs_from_k2(self):
        one = run_all_shards(multifault_spec(faults_per_trial=1))
        two = run_all_shards(multifault_spec())
        assert {k[0].rsplit("|", 1)[0] for k in one} == {
            k[0].rsplit("|", 1)[0] for k in two
        }
        def total_faults(results):
            return sum(c["faults_injected"] for c in results.values())

        assert 2 * total_faults(one) == total_faults(two)

    def test_k_beyond_site_count_fails_cleanly(self):
        spec = multifault_spec(faults_per_trial=10_000)
        with pytest.raises(EvaluationError):
            run_shard(spec.shards()[0])

    def test_shard_task_round_trip_keeps_faults_per_trial(self):
        task = multifault_spec().shards()[0]
        assert isinstance(task, ShardTask)
        assert task.cell.faults_per_trial == 2
