"""End-to-end runner tests: determinism across worker counts and resume."""

import pytest

from repro.campaign import (
    CampaignSpec,
    CheckpointStore,
    run_campaign,
    run_shard,
)
from repro.campaign.worker import build_executor, clear_executor_cache


def small_spec(**overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("unprotected", "ecim", "trim"),
        technologies=("stt",),
        gate_error_rates=(1e-2,),
        trials=40,
        shard_size=10,
        seed=11,
        name="runner-test",
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestDeterminism:
    def test_serial_repeatable(self):
        spec = small_spec()
        assert run_campaign(spec, workers=0).counts_by_cell == run_campaign(
            spec, workers=0
        ).counts_by_cell

    def test_serial_matches_two_workers(self):
        spec = small_spec()
        serial = run_campaign(spec, workers=0)
        parallel = run_campaign(spec, workers=2)
        assert serial.counts_by_cell == parallel.counts_by_cell

    def test_shard_size_does_not_change_aggregates(self):
        coarse = run_campaign(small_spec(shard_size=40), workers=0)
        fine = run_campaign(small_spec(shard_size=7), workers=0)
        assert coarse.counts_by_cell == fine.counts_by_cell

    def test_fresh_executor_matches_reused_executor(self):
        # The per-process executor cache (reset + rerun) must not change
        # outcomes relative to building a brand-new executor per shard.
        spec = small_spec(schemes=("ecim",), trials=10, shard_size=10)
        task = spec.shards()[0]
        clear_executor_cache()
        first = run_shard(task)
        again = run_shard(task)  # now served by the reused executor
        assert first == again

    def test_different_seeds_differ(self):
        # 40 trials at 1e-2 over ECiM metadata sites: collision of every
        # counter across two seeds would mean seeding is broken.
        a = run_campaign(small_spec(seed=1, schemes=("ecim",)), workers=0)
        b = run_campaign(small_spec(seed=2, schemes=("ecim",)), workers=0)
        assert a.counts_by_cell != b.counts_by_cell


class TestDrainTasks:
    def test_poisoned_record_callback_propagates_and_terminates(self):
        # Regression: a record callback that raises (e.g. a full-disk
        # checkpoint append) used to leave queued shards running behind the
        # pool's context-manager exit; drain_tasks must cancel the backlog
        # and surface the original exception promptly.
        from repro.campaign.runner import drain_tasks

        spec = small_spec(schemes=("ecim",), trials=80, shard_size=5)
        pending = spec.shards()
        assert len(pending) == 16
        recorded = []

        def poisoned(result):
            recorded.append(result)
            if len(recorded) == 2:
                raise RuntimeError("record sink failed")

        with pytest.raises(RuntimeError, match="record sink failed"):
            drain_tasks(2, pending, poisoned)
        # The failure cancelled the backlog instead of draining all 16.
        assert 2 <= len(recorded) < len(pending)

    def test_serial_path_stops_at_the_poisoned_record(self):
        from repro.campaign.runner import drain_tasks

        spec = small_spec(schemes=("ecim",), trials=20, shard_size=5)
        recorded = []

        def poisoned(result):
            recorded.append(result)
            raise RuntimeError("record sink failed")

        with pytest.raises(RuntimeError, match="record sink failed"):
            drain_tasks(0, spec.shards(), poisoned)
        assert len(recorded) == 1


class TestResume:
    def test_second_run_resumes_everything(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "campaign.jsonl"
        first = run_campaign(spec, workers=0, checkpoint=path)
        assert first.executed_shards == len(spec.shards())
        assert first.resumed_shards == 0

        second = run_campaign(spec, workers=0, checkpoint=path)
        assert second.executed_shards == 0
        assert second.resumed_shards == len(spec.shards())
        assert second.counts_by_cell == first.counts_by_cell

    def test_partial_checkpoint_runs_only_missing_shards(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "campaign.jsonl"
        store = CheckpointStore(path)
        shards = spec.shards()
        for task in shards[:5]:
            store.append(spec.spec_hash(), run_shard(task))

        result = run_campaign(spec, workers=0, checkpoint=path)
        assert result.resumed_shards == 5
        assert result.executed_shards == len(shards) - 5
        assert result.counts_by_cell == run_campaign(spec, workers=0).counts_by_cell

    def test_changed_seed_invalidates_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(small_spec(seed=1), workers=0, checkpoint=path)
        rerun = run_campaign(small_spec(seed=2), workers=0, checkpoint=path)
        assert rerun.resumed_shards == 0
        assert rerun.executed_shards == len(small_spec().shards())

    def test_resume_with_different_worker_count(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "campaign.jsonl"
        store = CheckpointStore(path)
        for task in spec.shards()[:4]:
            store.append(spec.spec_hash(), run_shard(task))
        resumed = run_campaign(spec, workers=2, checkpoint=path)
        assert resumed.resumed_shards == 4
        assert resumed.counts_by_cell == run_campaign(spec, workers=0).counts_by_cell


class TestOutcomes:
    def test_every_trial_lands_in_exactly_one_outcome(self):
        result = run_campaign(small_spec(), workers=0)
        for counts in result.counts_by_cell.values():
            assert counts["trials"] == 40
            assert (
                counts["clean"]
                + counts["recovered"]
                + counts["detected_corruption"]
                + counts["silent_corruption"]
                == counts["trials"]
            )
            assert counts["correct"] == counts["clean"] + counts["recovered"]
            assert counts["detected"] == counts["recovered"] + counts["detected_corruption"]

    def test_zero_error_rate_is_fault_free_and_fully_covered(self):
        result = run_campaign(small_spec(gate_error_rates=(0.0,), trials=5), workers=0)
        for counts in result.counts_by_cell.values():
            assert counts["correct"] == 5
            assert counts["faults_injected"] == 0
            assert counts["detected"] == 0

    def test_progress_callback_sees_every_shard(self):
        spec = small_spec()
        seen = []
        run_campaign(spec, workers=0, progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (len(spec.shards()), len(spec.shards()))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_unknown_workload_raises(self):
        from repro.errors import UnknownWorkloadError

        with pytest.raises(UnknownWorkloadError):
            run_campaign(small_spec(workloads=("warp-core",), trials=1), workers=0)


class TestBuildExecutor:
    def test_builds_each_scheme(self):
        from repro.core.executor import EcimExecutor, TrimExecutor, UnprotectedExecutor

        spec = small_spec()
        by_scheme = {cell.scheme: build_executor(cell) for cell in spec.cells()}
        assert isinstance(by_scheme["unprotected"], UnprotectedExecutor)
        assert isinstance(by_scheme["ecim"], EcimExecutor)
        assert isinstance(by_scheme["trim"], TrimExecutor)
