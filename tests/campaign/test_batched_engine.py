"""Campaign integration of the batched execution backend.

Covers the spec/CLI surface (``backend`` field, deprecated ``engine`` alias,
hash back-compat), the worker dispatch, exact scalar equality on fault-free
cells, statistical scalar agreement on stochastic cells, and the SEP
acceptance sweep.
"""

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    run_campaign,
    run_shard,
)
from repro.campaign.aggregate import COUNT_KEYS
from repro.campaign.spec import CAMPAIGN_BACKENDS, CAMPAIGN_ENGINES, ShardTask
from repro.campaign.worker import clear_executor_cache
from repro.campaign.workloads import get_campaign_workload
from repro.core.batched import compile_plan, run_batch, sample_input_matrix
from repro.errors import EvaluationError


def spec(backend="batched", **overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("unprotected", "ecim", "trim"),
        technologies=("stt",),
        gate_error_rates=(1e-2,),
        trials=60,
        shard_size=20,
        seed=7,
        backend=backend,
        name="batched-backend-test",
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestSpecSurface:
    def test_backends_constant(self):
        assert CAMPAIGN_BACKENDS == ("scalar", "batched", "bitpacked")
        # The deprecated alias names the same choice set.
        assert CAMPAIGN_ENGINES == CAMPAIGN_BACKENDS

    def test_default_backend_is_scalar(self):
        assert CampaignSpec(workloads=("and2",)).backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(EvaluationError):
            CampaignSpec(workloads=("and2",), backend="vectorised")
        with pytest.raises(EvaluationError):
            ShardTask(
                cell=spec().cells()[0], shard_index=0, start_trial=0,
                n_trials=1, campaign_seed=0, backend="vectorised",
            )

    def test_backend_propagates_to_shards(self):
        assert all(task.backend == "batched" for task in spec().shards())
        assert all(task.backend == "scalar" for task in spec(backend="scalar").shards())

    def test_scalar_hash_unchanged_by_backend_field(self):
        # Pre-backend checkpoints must stay resumable: a default-backend spec
        # hashes as if the field did not exist.
        base = spec(backend="scalar")
        data = base.to_dict()
        assert data["backend"] == "scalar"
        del data["backend"]
        assert CampaignSpec.from_dict(data).spec_hash() == base.spec_hash()

    def test_batched_hash_differs_from_scalar(self):
        assert spec().spec_hash() != spec(backend="scalar").spec_hash()

    def test_backend_round_trips_through_json(self):
        assert CampaignSpec.from_json(spec().to_json()).backend == "batched"


class TestEngineDeprecationShim:
    def test_engine_kwarg_maps_to_backend_with_warning(self):
        with pytest.deprecated_call():
            legacy = CampaignSpec(workloads=("and2",), engine="batched")
        assert legacy.backend == "batched"
        # The alias mirrors the resolved backend for legacy readers.
        assert legacy.engine == "batched"

    def test_engine_spec_hash_matches_backend_spec_hash(self):
        # A pre-rename batched checkpoint must resume under the new field.
        with pytest.deprecated_call():
            legacy = CampaignSpec(workloads=("and2",), engine="batched")
        assert legacy.spec_hash() == CampaignSpec(
            workloads=("and2",), backend="batched"
        ).spec_hash()

    def test_engine_json_spec_files_still_load(self):
        with pytest.deprecated_call():
            loaded = CampaignSpec.from_dict(
                {"workloads": ["and2"], "engine": "batched"}
            )
        assert loaded.backend == "batched"

    def test_engine_key_not_serialised(self):
        with pytest.deprecated_call():
            legacy = CampaignSpec(workloads=("and2",), engine="batched")
        data = legacy.to_dict()
        assert "engine" not in data
        assert data["backend"] == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.deprecated_call(), pytest.raises(EvaluationError):
            CampaignSpec(workloads=("and2",), engine="vectorised")

    def test_conflicting_engine_and_backend_rejected(self):
        with pytest.deprecated_call(), pytest.raises(EvaluationError):
            CampaignSpec(workloads=("and2",), backend="batched", engine="scalar")

    def test_stale_engine_cannot_override_explicit_scalar_backend(self):
        # An *explicit* backend="scalar" is a pin, not a default: a stale
        # engine kwarg must conflict loudly instead of silently switching
        # the campaign onto Philox streams and the batched hash namespace.
        with pytest.deprecated_call(), pytest.raises(EvaluationError):
            CampaignSpec(workloads=("and2",), backend="scalar", engine="batched")

    def test_shard_task_engine_alias(self):
        task = spec().shards()[0]
        assert task.engine == task.backend == "batched"

    def test_shard_task_engine_kwarg_still_constructs(self):
        # PR-2 era code built ShardTask(engine=...) directly; the keyword
        # must keep working through the same deprecation shim.
        with pytest.deprecated_call():
            task = ShardTask(
                cell=spec().cells()[0], shard_index=0, start_trial=0,
                n_trials=5, campaign_seed=0, engine="batched",
            )
        assert task.backend == "batched"
        assert run_shard(task).counts["trials"] == 5


class TestWorkerDispatch:
    def test_unknown_technology_rejected_like_scalar(self):
        # The batched plan never consumes technology parameters, but a
        # typo'd --technologies must not silently succeed on one backend
        # and fail on the other.
        from repro.errors import TechnologyError

        clear_executor_cache()
        cell = spec().cells()[0]
        bogus = type(cell)(
            workload=cell.workload, scheme=cell.scheme, technology="sst",
            gate_error_rate=cell.gate_error_rate,
        )
        task = ShardTask(
            cell=bogus, shard_index=0, start_trial=0, n_trials=5,
            campaign_seed=0, backend="batched",
        )
        with pytest.raises(TechnologyError):
            run_shard(task)

    def test_counts_schema_matches_campaign_keys(self):
        task = spec().shards()[0]
        result = run_shard(task)
        assert set(result.counts) == set(COUNT_KEYS)
        assert result.counts["trials"] == task.n_trials

    def test_batched_shard_deterministic(self):
        task = spec().shards()[0]
        clear_executor_cache()
        first = run_shard(task)
        again = run_shard(task)  # now served by the cached plan
        assert first == again

    def test_shard_size_does_not_change_batched_aggregates(self):
        coarse = run_campaign(spec(shard_size=60), workers=0)
        fine = run_campaign(spec(shard_size=7), workers=0)
        assert coarse.counts_by_cell == fine.counts_by_cell

    def test_serial_matches_two_workers(self):
        serial = run_campaign(spec(), workers=0)
        parallel = run_campaign(spec(), workers=2)
        assert serial.counts_by_cell == parallel.counts_by_cell


class TestScalarAgreement:
    def test_fault_free_cells_match_scalar_exactly(self):
        # With no faults both backends are deterministic functions of the
        # shared input sampler, so every counter must agree bit-for-bit.
        kwargs = dict(gate_error_rates=(0.0,), trials=40, shard_size=10)
        batched = run_campaign(spec(**kwargs), workers=0)
        scalar = run_campaign(spec(backend="scalar", **kwargs), workers=0)
        assert batched.counts_by_cell == scalar.counts_by_cell
        for report in batched.reports:
            assert report.counts["correct"] == report.counts["trials"]

    def test_stochastic_cells_agree_statistically(self):
        # Different RNG streams, same Bernoulli model: expected faults per
        # trial are identical, so the realised totals over 300 trials must
        # agree within a generous band (fixed seeds keep this deterministic).
        kwargs = dict(
            workloads=("dot2",), schemes=("ecim",), gate_error_rates=(1e-2,),
            trials=300, shard_size=100,
        )
        batched = run_campaign(spec(**kwargs), workers=0).reports[0]
        scalar = run_campaign(spec(backend="scalar", **kwargs), workers=0).reports[0]
        assert batched.counts["faults_injected"] > 0
        ratio = batched.counts["faults_injected"] / scalar.counts["faults_injected"]
        assert 0.8 < ratio < 1.25
        assert abs(batched.coverage - scalar.coverage) < 0.12
        assert abs(batched.detected_rate - scalar.detected_rate) < 0.12


class TestSepAcceptance:
    def test_dot2_grid_zero_silent_corruption_under_protection(self):
        # The acceptance sweep: ECiM and TRiM on dot2 across the swept error
        # rates, batched backend — silent corruption must be zero everywhere,
        # while the unprotected baseline shows why protection is needed.
        result = run_campaign(
            spec(
                workloads=("dot2",),
                schemes=("unprotected", "ecim", "trim"),
                gate_error_rates=(1e-3, 1e-2),
                trials=200,
                shard_size=100,
            ),
            workers=0,
        )
        for report in result.reports:
            if report.cell.scheme in ("ecim", "trim"):
                assert report.counts["silent_corruption"] == 0, report.cell
            else:
                assert report.counts["detected"] == 0
        unprotected_hi = [
            r for r in result.reports
            if r.cell.scheme == "unprotected" and r.cell.gate_error_rate == 1e-2
        ][0]
        assert unprotected_hi.counts["silent_corruption"] > 0


class TestCheckpointInterop:
    def test_batched_campaign_resumes_own_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        full = run_campaign(spec(), workers=0, checkpoint=path)
        assert full.resumed_shards == 0
        again = run_campaign(spec(), workers=0, checkpoint=path)
        assert again.resumed_shards == len(spec().shards())
        assert again.counts_by_cell == full.counts_by_cell

    def test_batched_checkpoint_not_consumed_by_scalar_run(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_campaign(spec(), workers=0, checkpoint=path)
        scalar = run_campaign(spec(backend="scalar"), workers=0, checkpoint=path)
        assert scalar.resumed_shards == 0


class TestBatchedMemoryErrors:
    def test_memory_rate_changes_outcomes_only_for_checked_schemes(self):
        # Memory errors strike checker-transfer reads; the unprotected
        # executor performs none, so its batched counters must be invariant.
        netlist = get_campaign_workload("dot2").netlist
        seeds = list(range(80))
        matrix = sample_input_matrix(netlist, seeds)
        from repro.pim.faults import FaultModel

        plan_u = compile_plan(netlist, "unprotected")
        clean = run_batch(plan_u, matrix, FaultModel(), None)
        noisy = run_batch(plan_u, matrix, FaultModel(memory_error_rate=0.05), seeds)
        assert np.array_equal(clean.outputs, noisy.outputs)
        assert noisy.counts()["faults_injected"] == 0

        plan_e = compile_plan(netlist, "ecim")
        noisy_e = run_batch(plan_e, matrix, FaultModel(memory_error_rate=0.05), seeds)
        assert noisy_e.counts()["faults_injected"] > 0
        assert noisy_e.counts()["detected"] > 0
