"""Campaign integration of the declarative fault-model layer (ISSUE 5).

The ``fault_model`` spec field plugs the unified
:class:`~repro.pim.faults.FaultModelSpec` layer into the campaign grid.
Pinned here:

* spec/cell plumbing — canonicalisation of the grammar string, key suffixes,
  exclusivity with ``faults_per_trial``;
* resume compatibility — an *unset* field leaves the canonical dict, cell
  keys and ``spec_hash`` byte-identical to pre-field specs, so every old
  checkpoint resumes unchanged (the acceptance criterion);
* worker dispatch — fault-model shards produce byte-identical counters on
  the scalar and batched backends (burst and stuck-at both), because the
  layer shares one Philox stream per trial across backends.
"""

import pytest

from repro.campaign.checkpoint import CheckpointStore
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.worker import clear_executor_cache, run_shard
from repro.errors import EvaluationError


def fault_model_spec(fault_model="burst:length=3,window=6", **overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("ecim", "trim"),
        technologies=("stt",),
        gate_error_rates=(5e-3,),
        trials=24,
        shard_size=8,
        seed=11,
        fault_model=fault_model,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def run_all_shards(spec):
    clear_executor_cache()
    results = {}
    for task in spec.shards():
        result = run_shard(task)
        results[(result.cell_key, result.shard_index)] = dict(result.counts)
    return results


class TestSpecField:
    def test_canonicalised_on_construction(self):
        spec = fault_model_spec(fault_model="stuckat:cells=9+2,polarity=1")
        assert spec.fault_model == "stuck-at:cells=2+9,value=1"

    def test_equivalent_spellings_hash_identically(self):
        a = fault_model_spec(fault_model="stuckat:cells=9+2,polarity=1")
        b = fault_model_spec(fault_model="stuck-at:value=1,cells=2+9")
        assert a.spec_hash() == b.spec_hash()

    def test_malformed_model_fails_fast(self):
        with pytest.raises(EvaluationError, match="fault_model"):
            fault_model_spec(fault_model="gaussian:sigma=2")

    def test_exclusive_with_faults_per_trial(self):
        with pytest.raises(EvaluationError, match="exclusive"):
            fault_model_spec(faults_per_trial=2)

    def test_cell_key_suffix_only_when_set(self):
        with_model = fault_model_spec().cells()[0]
        without = fault_model_spec(fault_model=None).cells()[0]
        assert with_model.key.endswith("|fm=burst:length=3,window=6")
        assert "fm=" not in without.key

    def test_cell_validates_model_too(self):
        with pytest.raises(EvaluationError):
            CampaignCell("and2", "ecim", "stt", 1e-3, fault_model="nope")


class TestResumeCompatibility:
    """Acceptance: campaigns resume old checkpoints unchanged when the
    field is unset."""

    def test_unset_field_leaves_canonical_dict_and_hash_unchanged(self):
        spec = fault_model_spec(fault_model=None)
        data = spec.to_dict()
        assert "fault_model" not in data
        # A pre-field spec dict (no fault_model key at all) round-trips to
        # the same hash — the resume-compatibility key.
        assert CampaignSpec.from_dict(data).spec_hash() == spec.spec_hash()

    def test_set_field_hashes_into_its_own_namespace(self):
        assert fault_model_spec().spec_hash() != fault_model_spec(fault_model=None).spec_hash()

    def test_json_roundtrip_preserves_model(self):
        spec = fault_model_spec()
        loaded = CampaignSpec.from_json(spec.to_json())
        assert loaded.fault_model == spec.fault_model
        assert loaded.spec_hash() == spec.spec_hash()

    def test_checkpointed_fault_model_campaign_resumes(self, tmp_path):
        spec = fault_model_spec(backend="batched")
        path = tmp_path / "ckpt.jsonl"
        first = run_campaign(spec, workers=0, checkpoint=str(path))
        resumed = run_campaign(spec, workers=0, checkpoint=str(path))
        assert resumed.summary()["resumed_shards"] == len(spec.shards())
        assert resumed.summary()["executed_shards"] == 0
        for a, b in zip(first.reports, resumed.reports):
            assert a.cell.key == b.cell.key
            assert dict(a.counts) == dict(b.counts)
        store = CheckpointStore(str(path))
        assert len(store.load(spec.spec_hash())) == len(spec.shards())


class TestWorkerDispatch:
    @pytest.mark.parametrize(
        "fault_model",
        ["burst:length=3,window=6", "stuck-at:cells=3+6,value=1", "stochastic:preset=0.002"],
        ids=["burst", "stuck-at", "stochastic"],
    )
    def test_scalar_and_batched_counters_are_byte_identical(self, fault_model):
        scalar = run_all_shards(fault_model_spec(fault_model, backend="scalar"))
        batched = run_all_shards(fault_model_spec(fault_model, backend="batched"))
        assert scalar.keys() == batched.keys()
        for key in scalar:
            assert scalar[key] == batched[key], key

    def test_burst_rate_inherits_the_swept_cell_rate(self):
        # The grammar string leaves the trigger rate unset, so cells at
        # different grid rates must produce different fault pressure.
        quiet = run_all_shards(fault_model_spec(gate_error_rates=(1e-4,), schemes=("ecim",)))
        loud = run_all_shards(fault_model_spec(gate_error_rates=(5e-2,), schemes=("ecim",)))
        assert sum(c["faults_injected"] for c in quiet.values()) < sum(
            c["faults_injected"] for c in loud.values()
        )

    def test_stuck_at_injects_without_seeds_and_deterministically(self):
        spec = fault_model_spec("stuck-at:cells=3+6,value=1", schemes=("trim",))
        first = run_all_shards(spec)
        again = run_all_shards(spec)
        assert first == again
        assert all(c["faults_injected"] > 0 for c in first.values())

    def test_reruns_are_deterministic(self):
        spec = fault_model_spec(backend="batched")
        assert run_all_shards(spec) == run_all_shards(spec)
