"""Tests for campaign specs: grid expansion, sharding, seeding, serialisation."""

import pytest

from repro.campaign.spec import (
    CAMPAIGN_SCHEMES,
    CampaignCell,
    CampaignSpec,
    trial_seed,
)
from repro.errors import EvaluationError


def small_spec(**overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("unprotected", "ecim"),
        technologies=("stt",),
        gate_error_rates=(1e-3, 1e-2),
        trials=10,
        shard_size=4,
        seed=42,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestGridExpansion:
    def test_cell_count_is_full_cross_product(self):
        spec = small_spec(schemes=("unprotected", "ecim", "trim"), technologies=("stt", "reram"))
        assert len(spec.cells()) == 1 * 3 * 2 * 2

    def test_cell_order_is_deterministic(self):
        assert small_spec().cells() == small_spec().cells()

    def test_cells_carry_spec_wide_settings(self):
        spec = small_spec(memory_error_rate=1e-5, multi_output=False)
        for cell in spec.cells():
            assert cell.memory_error_rate == 1e-5
            assert not cell.multi_output

    def test_names_are_normalised(self):
        spec = small_spec(workloads=("AND2",), schemes=("ECiM",), technologies=("STT",))
        cell = spec.cells()[0]
        assert (cell.workload, cell.scheme, cell.technology) == ("and2", "ecim", "stt")

    def test_total_trials(self):
        assert small_spec().total_trials == 10 * 2 * 2


class TestSharding:
    def test_shard_partitioning_covers_all_trials_without_overlap(self):
        spec = small_spec()  # 10 trials, shard_size 4 -> shards of 4, 4, 2
        for cell in spec.cells():
            shards = [s for s in spec.shards() if s.cell == cell]
            assert [s.n_trials for s in shards] == [4, 4, 2]
            seen = [t for s in shards for t in s.trial_indices]
            assert seen == list(range(10))

    def test_exact_division_has_no_runt_shard(self):
        spec = small_spec(trials=8, shard_size=4)
        assert all(s.n_trials == 4 for s in spec.shards())

    def test_shards_depend_only_on_spec(self):
        assert small_spec().shards() == small_spec().shards()


class TestValidation:
    def test_rejects_empty_workloads(self):
        with pytest.raises(EvaluationError):
            small_spec(workloads=())

    def test_rejects_unknown_scheme(self):
        with pytest.raises(EvaluationError):
            small_spec(schemes=("parity-of-vibes",))

    def test_rejects_bad_rates(self):
        with pytest.raises(EvaluationError):
            small_spec(gate_error_rates=(1.5,))
        with pytest.raises(EvaluationError):
            small_spec(memory_error_rate=-0.1)

    def test_rejects_nonpositive_trials_and_shards(self):
        with pytest.raises(EvaluationError):
            small_spec(trials=0)
        with pytest.raises(EvaluationError):
            small_spec(shard_size=0)

    def test_cell_rejects_unknown_scheme(self):
        with pytest.raises(EvaluationError):
            CampaignCell(workload="and2", scheme="nope", technology="stt", gate_error_rate=0.1)


class TestSerialisation:
    def test_json_round_trip(self):
        spec = small_spec()
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = small_spec().to_dict()
        data["gpu_count"] = 8
        with pytest.raises(EvaluationError):
            CampaignSpec.from_dict(data)

    def test_hash_stable_across_instances(self):
        assert small_spec().spec_hash() == small_spec().spec_hash()

    def test_hash_ignores_cosmetic_name(self):
        assert small_spec(name="a").spec_hash() == small_spec(name="b").spec_hash()

    def test_hash_changes_with_seed_and_grid(self):
        base = small_spec().spec_hash()
        assert small_spec(seed=43).spec_hash() != base
        assert small_spec(shard_size=5).spec_hash() != base
        assert small_spec(gate_error_rates=(1e-3,)).spec_hash() != base


class TestTrialSeed:
    def test_deterministic(self):
        assert trial_seed(1, "cell", 5, "faults") == trial_seed(1, "cell", 5, "faults")

    def test_streams_are_independent(self):
        assert trial_seed(1, "cell", 5, "faults") != trial_seed(1, "cell", 5, "inputs")

    def test_varies_with_every_component(self):
        base = trial_seed(1, "cell", 5, "faults")
        assert trial_seed(2, "cell", 5, "faults") != base
        assert trial_seed(1, "other", 5, "faults") != base
        assert trial_seed(1, "cell", 6, "faults") != base

    def test_is_64_bit(self):
        for trial in range(50):
            assert 0 <= trial_seed(0, "c", trial, "s") < 2**64

    def test_schemes_constant_matches_worker_support(self):
        assert CAMPAIGN_SCHEMES == ("unprotected", "ecim", "trim")


def test_duplicate_grid_entries_are_deduplicated():
    spec = CampaignSpec(
        workloads=("and2", "AND2"),
        schemes=("trim", "trim"),
        gate_error_rates=(1e-3, 1e-3),
    )
    assert spec.workloads == ("and2",)
    assert spec.schemes == ("trim",)
    assert spec.gate_error_rates == (1e-3,)
    assert len(spec.cells()) == 1


def test_json_numeric_strings_are_coerced_and_hash_canonical():
    # A hand-written spec file may carry "100" for 100; coercion keeps the
    # spec usable and its hash identical to the int-typed twin.
    data = small_spec().to_dict()
    data["trials"], data["seed"], data["shard_size"] = "10", "42", "4"
    coerced = CampaignSpec.from_dict(data)
    assert (coerced.trials, coerced.seed, coerced.shard_size) == (10, 42, 4)
    assert coerced.spec_hash() == small_spec().spec_hash()


def test_malformed_numeric_field_raises_cleanly():
    with pytest.raises(EvaluationError):
        small_spec(trials="ten")
    with pytest.raises(EvaluationError):
        small_spec(seed=None)


class TestFaultsPerTrial:
    def test_default_is_none_and_absent_from_dict(self):
        spec = small_spec()
        assert spec.faults_per_trial is None
        assert "faults_per_trial" not in spec.to_dict()

    def test_hash_back_compat_when_unset(self):
        # The canonical form of a spec without faults_per_trial is unchanged,
        # so pre-multi-fault checkpoints remain resumable.
        assert small_spec().spec_hash() == small_spec(name="other").spec_hash()
        assert "faults_per_trial" not in small_spec().to_json()

    def test_set_value_round_trips_and_rehashes(self):
        spec = small_spec(faults_per_trial=2)
        assert spec.faults_per_trial == 2
        round_tripped = CampaignSpec.from_json(spec.to_json())
        assert round_tripped.faults_per_trial == 2
        assert round_tripped.spec_hash() == spec.spec_hash()
        assert spec.spec_hash() != small_spec().spec_hash()

    def test_cells_carry_faults_per_trial_with_key_suffix(self):
        for cell in small_spec(faults_per_trial=3).cells():
            assert cell.faults_per_trial == 3
            assert cell.key.endswith("|f3")
        for cell in small_spec().cells():
            assert cell.faults_per_trial is None
            assert "|f" not in cell.key

    def test_string_value_is_coerced(self):
        assert small_spec(faults_per_trial="2").faults_per_trial == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(EvaluationError):
            small_spec(faults_per_trial=0)
        with pytest.raises(EvaluationError):
            CampaignCell(
                workload="and2", scheme="ecim", technology="stt",
                gate_error_rate=1e-3, faults_per_trial=0,
            )
