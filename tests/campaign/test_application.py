"""Tests for application-level campaign metrics (mlp16 / fft4 oracles)."""

import json

import numpy as np
import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.aggregate import ShardResult, merge_shard_application
from repro.campaign.application import (
    APPLICATION_KEYS,
    application_counts,
    available_application_workloads,
    fft4_netlist,
    get_application_workload,
    has_application_metrics,
    mlp16_netlist,
    zeroed_application,
)
from repro.campaign.workloads import get_campaign_workload
from repro.errors import EvaluationError, UnknownWorkloadError


def app_spec(**overrides):
    defaults = dict(
        workloads=("mlp16",),
        schemes=("unprotected",),
        technologies=("stt",),
        gate_error_rates=(1e-3,),
        trials=16,
        shard_size=8,
        seed=5,
        backend="batched",
        fault_model="stochastic",
        application=True,
        name="application-test",
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestWorkloadRegistry:
    def test_application_netlists_are_campaign_workloads(self):
        assert get_campaign_workload("mlp16").netlist.name.startswith("mlp-16")
        assert get_campaign_workload("fft4").netlist is not None

    def test_registry_contents(self):
        assert available_application_workloads() == ("fft4", "mlp16")
        assert has_application_metrics("mlp16")
        assert not has_application_metrics("and2")

    def test_unknown_workload_raises(self):
        with pytest.raises(UnknownWorkloadError, match="no application metrics"):
            get_application_workload("and2")

    def test_netlist_shapes(self):
        mlp = mlp16_netlist()
        assert len(mlp.inputs) == 16 * 2  # 16 pixels x 2-bit activations
        assert len(mlp.outputs) % 4 == 0  # four equal-width class scores
        fft = fft4_netlist()
        assert len(fft.inputs) == 4 * 4
        assert len(fft.outputs) == 2 * 4 * 4  # 4 bins x (re, im) x 4 bits


class TestApplicationCounts:
    def test_fault_free_outputs_score_zero(self):
        workload = get_application_workload("fft4")
        netlist = fft4_netlist()
        rng = np.random.default_rng(0)
        inputs = rng.integers(0, 2, size=(6, len(netlist.inputs))).astype(np.uint8)
        outputs = np.empty((6, len(netlist.outputs)), dtype=np.uint8)
        for trial in range(6):
            assignment = dict(zip(netlist.inputs, (int(b) for b in inputs[trial])))
            values = netlist.evaluate_outputs(assignment)
            outputs[trial] = [values[signal] for signal in netlist.outputs]
        counts = application_counts(workload, inputs, outputs)
        assert counts == {
            "app_trials": 6,
            "argmax_flips": 0,
            "output_bit_errors": 0,
            "output_error_magnitude": 0,
        }

    def test_single_bit_flip_is_counted_once(self):
        workload = get_application_workload("fft4")
        netlist = fft4_netlist()
        inputs = np.zeros((1, len(netlist.inputs)), dtype=np.uint8)
        assignment = dict(zip(netlist.inputs, [0] * len(netlist.inputs)))
        values = netlist.evaluate_outputs(assignment)
        outputs = np.array(
            [[values[signal] for signal in netlist.outputs]], dtype=np.uint8
        )
        outputs[0, 0] ^= 1  # LSB of the first output word
        counts = application_counts(workload, inputs, outputs)
        assert counts["output_bit_errors"] == 1
        assert counts["output_error_magnitude"] == 1

    def test_magnitude_wraps_around(self):
        # All-ones word vs all-zeros oracle: wrap-around distance is 1 (the
        # two's-complement neighbour), not 2^bits - 1.
        workload = get_application_workload("fft4")
        netlist = fft4_netlist()
        inputs = np.zeros((1, len(netlist.inputs)), dtype=np.uint8)
        assignment = dict(zip(netlist.inputs, [0] * len(netlist.inputs)))
        values = netlist.evaluate_outputs(assignment)
        outputs = np.array(
            [[values[signal] for signal in netlist.outputs]], dtype=np.uint8
        )
        outputs[0, :4] ^= 1  # first word 0b1111 = -1 mod 16
        counts = application_counts(workload, inputs, outputs)
        assert counts["output_bit_errors"] == 4
        assert counts["output_error_magnitude"] == 1

    def test_keys_match_zeroed(self):
        assert tuple(zeroed_application()) == APPLICATION_KEYS


class TestSpecValidation:
    def test_application_requires_oracle_workload(self):
        with pytest.raises(UnknownWorkloadError, match="no application metrics"):
            app_spec(workloads=("and2",))

    def test_application_and_estimator_are_exclusive(self):
        with pytest.raises(EvaluationError, match="exclusive"):
            app_spec(estimator="importance:rate=1e-2")

    def test_spec_hash_unset_application_is_back_compatible(self):
        # application=None must vanish from to_dict so pre-existing spec
        # hashes and checkpoints stay valid.
        plain = app_spec(application=None)
        assert "application" not in plain.to_dict()
        assert plain.spec_hash() != app_spec().spec_hash()
        rebuilt = CampaignSpec.from_dict(app_spec().to_dict())
        assert rebuilt.spec_hash() == app_spec().spec_hash()

    def test_cell_key_excludes_application(self):
        # Same key => same trial seeds => base counters byte-identical to
        # the plain twin campaign.
        assert [cell.key for cell in app_spec().cells()] == [
            cell.key for cell in app_spec(application=None).cells()
        ]


class TestCampaignDeterminism:
    def test_golden_counters(self):
        # Pinned byte-level golden: the merged application counters of the
        # seed-5 mlp16+fft4 campaign.  A change here means trial seeding,
        # netlist synthesis, fault injection or oracle scoring drifted.
        spec = app_spec(workloads=("mlp16", "fft4"), schemes=("unprotected", "ecim"))
        result = run_campaign(spec, workers=0)
        prefix = "stt|g1.000000000e-03|m0.000000000e+00|mo|fm=stochastic"
        assert result.application_by_cell == {
            f"mlp16|unprotected|{prefix}": {
                "app_trials": 16,
                "argmax_flips": 13,
                "output_bit_errors": 214,
                "output_error_magnitude": 875789,
            },
            f"mlp16|ecim|{prefix}": {
                "app_trials": 16,
                "argmax_flips": 7,
                "output_bit_errors": 305,
                "output_error_magnitude": 1330839,
            },
            f"fft4|unprotected|{prefix}": {
                "app_trials": 16,
                "argmax_flips": 2,
                "output_bit_errors": 13,
                "output_error_magnitude": 17,
            },
            f"fft4|ecim|{prefix}": {
                "app_trials": 16,
                "argmax_flips": 1,
                "output_bit_errors": 8,
                "output_error_magnitude": 28,
            },
        }

    def test_base_counters_match_plain_twin(self):
        # application scoring must not perturb the trial stream: the base
        # counters equal the same campaign run without application=True.
        scored = run_campaign(app_spec(), workers=0)
        plain = run_campaign(app_spec(application=None), workers=0)
        assert scored.counts_by_cell == plain.counts_by_cell

    @pytest.mark.parametrize("backend", ["scalar", "batched", "bitpacked"])
    def test_backends_byte_identical(self, backend):
        reference = run_campaign(app_spec(workloads=("fft4",)), workers=0)
        other = run_campaign(
            app_spec(workloads=("fft4",), backend=backend), workers=0
        )
        assert other.application_by_cell == reference.application_by_cell
        assert other.counts_by_cell == reference.counts_by_cell

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_invariant(self, workers):
        serial = run_campaign(app_spec(), workers=0)
        parallel = run_campaign(app_spec(), workers=workers)
        assert serial.application_by_cell == parallel.application_by_cell
        assert serial.counts_by_cell == parallel.counts_by_cell

    def test_kflip_campaign_carries_application(self):
        result = run_campaign(
            app_spec(fault_model=None, faults_per_trial=2, workloads=("fft4",)),
            workers=0,
        )
        (counters,) = result.application_by_cell.values()
        assert counters["app_trials"] == 16

    def test_rendered_includes_application_table(self):
        result = run_campaign(app_spec(workloads=("fft4",)), workers=0)
        assert "application-level degradation" in result.rendered
        assert "argmax flips" in result.rendered
        summary = result.summary()
        assert summary["application_trials"] == 16


class TestCheckpointRoundTrip:
    def test_resume_preserves_application_counters(self, tmp_path):
        spec = app_spec(workloads=("fft4",))
        checkpoint = tmp_path / "ck.jsonl"
        first = run_campaign(spec, workers=0, checkpoint=checkpoint)
        resumed = run_campaign(spec, workers=0, checkpoint=checkpoint)
        assert resumed.executed_shards == 0
        assert resumed.resumed_shards == first.executed_shards
        assert resumed.application_by_cell == first.application_by_cell

    def test_shard_result_round_trips_application(self):
        result = ShardResult(
            cell_key="k",
            shard_index=3,
            application={
                "app_trials": 4,
                "argmax_flips": 1,
                "output_bit_errors": 7,
                "output_error_magnitude": 12,
            },
        )
        rebuilt = ShardResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result

    def test_plain_shard_result_serialises_without_application(self):
        data = ShardResult(cell_key="k", shard_index=0).to_dict()
        assert "application" not in data
        assert ShardResult.from_dict(data).application is None

    def test_unknown_application_counter_rejected(self):
        data = ShardResult(cell_key="k", shard_index=0).to_dict()
        data["application"] = {"bogus": 1}
        with pytest.raises(EvaluationError, match="unknown shard application counter"):
            ShardResult.from_dict(data)

    def test_merge_skips_cells_without_application(self):
        merged = merge_shard_application(
            [
                ShardResult(cell_key="a", shard_index=0),
                ShardResult(
                    cell_key="b",
                    shard_index=0,
                    application={"app_trials": 2, "argmax_flips": 1},
                ),
                ShardResult(
                    cell_key="b",
                    shard_index=1,
                    application={"app_trials": 3, "argmax_flips": 0},
                ),
            ]
        )
        assert "a" not in merged
        assert merged["b"]["app_trials"] == 5
        assert merged["b"]["argmax_flips"] == 1
