"""Tests for sequential stopping (rounds until the CI half-width target).

The driver's determinism is structural — round boundaries and stopping
decisions are functions of merged counters, which are worker-count-invariant
integer sums — so the same spec + target must reproduce the same round
count, shard set and counters under any worker count, and a checkpoint
truncated mid-round must resume into the identical schedule.
"""

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.adaptive.runner import DEFAULT_MAX_ROUNDS
from repro.errors import EvaluationError


def seq_spec(**overrides):
    defaults = dict(
        workloads=("and2",),
        schemes=("unprotected",),
        technologies=("rram",),
        gate_error_rates=(0.05,),
        trials=40,
        shard_size=16,
        seed=11,
        name="sequential-unit",
        estimator="uniform:metric=silent_corruption",
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


TARGET = 0.04


class TestDeterminism:
    @pytest.mark.parametrize("workers", [0, 2, 4])
    def test_same_rounds_and_counters_for_any_worker_count(self, workers):
        serial = run_campaign(seq_spec(), workers=0, target_ci_halfwidth=TARGET)
        result = run_campaign(seq_spec(), workers=workers, target_ci_halfwidth=TARGET)
        assert result.rounds == serial.rounds
        assert result.counts_by_cell == serial.counts_by_cell
        assert result.rounds > 1  # the target actually forced extra rounds
        report = result.reports[0]
        assert report.estimate_halfwidth("silent_corruption") <= TARGET

    def test_converged_cells_stop_receiving_rounds(self):
        # Two cells with very different variances: the easy cell (rate 0,
        # degenerate counters) converges in round one while the hard cell
        # keeps going — total trials must differ between the two cells.
        spec = seq_spec(gate_error_rates=(0.0, 0.05))
        result = run_campaign(spec, workers=0, target_ci_halfwidth=TARGET)
        trials = sorted(report.trials for report in result.reports)
        assert result.rounds > 1
        assert trials[0] < trials[1]  # the easy cell dropped out earlier
        assert trials[1] == spec.trials * result.rounds


class TestStoppingBounds:
    def test_loose_target_stops_after_one_round(self):
        result = run_campaign(seq_spec(), workers=0, target_ci_halfwidth=0.9)
        assert result.rounds == 1
        assert result.total_trials == seq_spec().trials

    def test_max_rounds_caps_an_unreachable_target(self):
        result = run_campaign(
            seq_spec(), workers=0, target_ci_halfwidth=1e-9, max_rounds=3
        )
        assert result.rounds == 3
        assert result.total_trials == 3 * seq_spec().trials

    def test_default_round_cap(self):
        assert DEFAULT_MAX_ROUNDS == 64

    def test_invalid_target_and_max_rounds_raise(self):
        with pytest.raises(EvaluationError):
            run_campaign(seq_spec(), workers=0, target_ci_halfwidth=0.0)
        with pytest.raises(EvaluationError):
            run_campaign(seq_spec(), workers=0, target_ci_halfwidth=0.1, max_rounds=0)

    def test_target_without_estimator_uses_uniform(self):
        # A plain spec plus a target dispatches adaptively with the default
        # uniform estimator over silent_corruption.
        plain = seq_spec(estimator=None)
        result = run_campaign(plain, workers=0, target_ci_halfwidth=TARGET)
        assert result.rounds > 1
        assert result.target_ci_halfwidth == TARGET


class TestResume:
    def test_checkpoint_resume_mid_round(self, tmp_path):
        path = tmp_path / "seq.jsonl"
        full = run_campaign(
            seq_spec(), workers=0, checkpoint=path, target_ci_halfwidth=TARGET
        )
        assert full.rounds > 1
        lines = path.read_text().splitlines()
        assert len(lines) == full.executed_shards

        # Truncate mid-round-two: keep round one plus a fragment of round
        # two, then resume.  The driver must replay the kept shards and
        # execute exactly the missing ones, landing on identical counters
        # and the identical round count.
        shards_per_round = -(-seq_spec().trials // seq_spec().shard_size)
        kept = shards_per_round + 1
        assert kept < len(lines)
        path.write_text("\n".join(lines[:kept]) + "\n")

        resumed = run_campaign(
            seq_spec(), workers=0, checkpoint=path, target_ci_halfwidth=TARGET
        )
        assert resumed.rounds == full.rounds
        assert resumed.counts_by_cell == full.counts_by_cell
        assert resumed.resumed_shards == kept
        assert resumed.executed_shards == full.executed_shards - kept

    def test_completed_run_resumes_without_execution(self, tmp_path):
        path = tmp_path / "seq.jsonl"
        full = run_campaign(
            seq_spec(), workers=0, checkpoint=path, target_ci_halfwidth=TARGET
        )
        again = run_campaign(
            seq_spec(), workers=0, checkpoint=path, target_ci_halfwidth=TARGET
        )
        assert again.executed_shards == 0
        assert again.resumed_shards == full.executed_shards
        assert again.counts_by_cell == full.counts_by_cell
        assert again.rounds == full.rounds

    def test_stratified_sequential_resume(self, tmp_path):
        # The stratified driver re-derives per-round allocations from pooled
        # counters during resume; truncating after the pilot must still
        # reproduce the full run byte for byte.
        spec = seq_spec(
            gate_error_rates=(0.02,),
            estimator="stratified:k_max=2,metric=silent_corruption",
        )
        path = tmp_path / "strat.jsonl"
        full = run_campaign(spec, workers=0, checkpoint=path, target_ci_halfwidth=0.03)
        if full.executed_shards < 2:
            pytest.skip("campaign converged too quickly to truncate")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1]) + "\n")
        resumed = run_campaign(spec, workers=0, checkpoint=path, target_ci_halfwidth=0.03)
        assert resumed.counts_by_cell == full.counts_by_cell
        assert resumed.strata_by_cell == full.strata_by_cell
        assert resumed.rounds == full.rounds
