"""Tests for campaign statistics: Wilson intervals, merging, cell reports."""

import pytest

from repro.campaign.aggregate import (
    COUNT_KEYS,
    CellReport,
    ShardResult,
    build_cell_reports,
    merge_shard_counts,
    render_campaign_table,
    wilson_interval,
    zeroed_counts,
)
from repro.campaign.spec import CampaignCell
from repro.errors import EvaluationError


class TestWilsonInterval:
    def test_known_textbook_value(self):
        # Wilson 95% CI for 8 successes in 10 trials: (0.4902, 0.9433).
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.4902, abs=1e-4)
        assert high == pytest.approx(0.9433, abs=1e-4)

    def test_zero_successes_closed_form(self):
        # For p-hat = 0 the Wilson upper bound collapses to z^2 / (n + z^2).
        z = 1.96
        low, high = wilson_interval(0, 100, z=z)
        assert low == 0.0
        assert high == pytest.approx(z * z / (100 + z * z))

    def test_all_successes_is_mirror_of_zero(self):
        low0, high0 = wilson_interval(0, 100)
        low1, high1 = wilson_interval(100, 100)
        assert low1 == pytest.approx(1.0 - high0)
        assert high1 == pytest.approx(1.0 - low0, abs=1e-12)

    def test_symmetric_at_half(self):
        low, high = wilson_interval(5, 10)
        assert low == pytest.approx(1.0 - high)

    def test_interval_contains_point_estimate_and_shrinks_with_n(self):
        for n in (10, 100, 1000):
            low, high = wilson_interval(n // 2, n)
            assert low < 0.5 < high
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_no_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_arguments(self):
        with pytest.raises(EvaluationError):
            wilson_interval(5, 3)
        with pytest.raises(EvaluationError):
            wilson_interval(-1, 3)
        with pytest.raises(EvaluationError):
            wilson_interval(1, 3, z=0.0)


def make_result(cell_key="k", shard=0, **counts):
    full = zeroed_counts()
    full.update(counts)
    return ShardResult(cell_key=cell_key, shard_index=shard, counts=full)


class TestShardResult:
    def test_round_trip(self):
        result = make_result(trials=5, correct=4, silent_corruption=1)
        assert ShardResult.from_dict(result.to_dict()) == result

    def test_rejects_unknown_counter(self):
        data = make_result().to_dict()
        data["counts"]["vibes"] = 3
        with pytest.raises(EvaluationError):
            ShardResult.from_dict(data)

    def test_missing_counters_default_to_zero(self):
        result = ShardResult.from_dict({"cell": "k", "shard": 1, "counts": {"trials": 2}})
        assert result.counts["trials"] == 2
        assert result.counts["correct"] == 0


class TestMerge:
    def test_sums_per_cell(self):
        merged = merge_shard_counts(
            [
                make_result("a", 0, trials=4, correct=3),
                make_result("a", 1, trials=4, correct=4),
                make_result("b", 0, trials=2, correct=0),
            ]
        )
        assert merged["a"]["trials"] == 8 and merged["a"]["correct"] == 7
        assert merged["b"]["trials"] == 2 and merged["b"]["correct"] == 0

    def test_order_independent(self):
        shards = [make_result("a", i, trials=3, correct=i) for i in range(4)]
        assert merge_shard_counts(shards) == merge_shard_counts(list(reversed(shards)))


class TestCellReport:
    def cell(self):
        return CampaignCell(
            workload="and2", scheme="ecim", technology="stt", gate_error_rate=1e-3
        )

    def test_rates(self):
        counts = zeroed_counts()
        counts.update(
            trials=100, correct=97, detected=20, recovered=17,
            detected_corruption=2, silent_corruption=1, faults_injected=30,
        )
        report = CellReport(cell=self.cell(), counts=counts)
        assert report.coverage == pytest.approx(0.97)
        assert report.detected_rate == pytest.approx(0.20)
        assert report.silent_corruption_rate == pytest.approx(0.01)
        assert report.recovered_rate == pytest.approx(0.17)
        assert report.average_faults_per_trial == pytest.approx(0.30)
        low, high = report.coverage_interval
        assert low < 0.97 < high

    def test_empty_cell_has_vacuous_interval(self):
        report = CellReport(cell=self.cell(), counts=zeroed_counts())
        assert report.trials == 0
        assert report.coverage == 0.0
        assert report.coverage_interval == (0.0, 1.0)

    def test_build_reports_in_grid_order_with_missing_cells_zeroed(self):
        cells = [self.cell()]
        reports = build_cell_reports(cells, {})
        assert len(reports) == 1 and reports[0].trials == 0

    def test_render_contains_cells_and_intervals(self):
        counts = zeroed_counts()
        counts.update(trials=10, correct=10)
        text = render_campaign_table("t", [CellReport(cell=self.cell(), counts=counts)])
        assert "ecim" in text and "95% CI" in text and "1.0000" in text


def test_count_keys_cover_outcome_partition():
    # The four-way outcome partition plus its two marginals must all be counters.
    for key in ("correct", "clean", "recovered", "detected_corruption", "silent_corruption", "detected"):
        assert key in COUNT_KEYS
