"""Tests for the NOR-based synthesiser: logic primitives, adders, multipliers
and the carry-save blocks.  All functional checks run against the netlist's
golden evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.netlist import Netlist
from repro.compiler.synthesis import CircuitBuilder
from repro.errors import SynthesisError


def evaluate_word(netlist, input_map, word):
    values = netlist.evaluate(input_map)
    values[Netlist.CONST_ZERO] = 0
    values[Netlist.CONST_ONE] = 1
    return sum(values[s] << i for i, s in enumerate(word))


def assign(word, value):
    return {signal: (value >> i) & 1 for i, signal in enumerate(word)}


class TestLogicPrimitives:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_two_input_primitives(self, a, b):
        builder = CircuitBuilder()
        x, y = builder.input_bit(), builder.input_bit()
        outputs = {
            "and": builder.and_(x, y),
            "or": builder.or_(x, y),
            "nand": builder.nand(x, y),
            "xor": builder.xor(x, y),
            "xnor": builder.xnor(x, y),
        }
        for signal in outputs.values():
            builder.mark_output_bit(signal)
        values = builder.netlist.evaluate({x: a, y: b})
        assert values[outputs["and"]] == (a & b)
        assert values[outputs["or"]] == (a | b)
        assert values[outputs["nand"]] == 1 - (a & b)
        assert values[outputs["xor"]] == (a ^ b)
        assert values[outputs["xnor"]] == 1 - (a ^ b)

    @pytest.mark.parametrize("sel,a,b", [(0, 0, 1), (0, 1, 0), (1, 0, 1), (1, 1, 0)])
    def test_mux(self, sel, a, b):
        builder = CircuitBuilder()
        s, x, y = builder.input_bit(), builder.input_bit(), builder.input_bit()
        out = builder.mux(s, x, y)
        builder.mark_output_bit(out)
        value = builder.netlist.evaluate({s: sel, x: a, y: b})[out]
        assert value == (b if sel else a)

    @pytest.mark.parametrize("a,b,c", [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1), (0, 1, 1)])
    def test_majority3(self, a, b, c):
        builder = CircuitBuilder()
        x, y, z = (builder.input_bit() for _ in range(3))
        out = builder.majority3(x, y, z)
        builder.mark_output_bit(out)
        assert builder.netlist.evaluate({x: a, y: b, z: c})[out] == (1 if a + b + c >= 2 else 0)

    def test_xor_uses_two_gates_with_multi_output(self):
        builder = CircuitBuilder(use_multi_output=True)
        x, y = builder.input_bit(), builder.input_bit()
        builder.mark_output_bit(builder.xor(x, y))
        assert builder.netlist.stats().n_gates == 2  # NOR22 + THR

    def test_xor_uses_three_gates_without_multi_output(self):
        builder = CircuitBuilder(use_multi_output=False)
        x, y = builder.input_bit(), builder.input_bit()
        builder.mark_output_bit(builder.xor(x, y))
        assert builder.netlist.stats().n_gates == 3  # NOR + CP + THR

    def test_reductions(self):
        builder = CircuitBuilder()
        word = builder.input_word(4)
        any_bit = builder.reduce_or(word)
        all_bits = builder.reduce_and(word)
        zero = builder.is_zero(word)
        for signal in (any_bit, all_bits, zero):
            builder.mark_output_bit(signal)
        values = builder.netlist.evaluate(assign(word, 0b1010))
        assert values[any_bit] == 1
        assert values[all_bits] == 0
        assert values[zero] == 0
        values = builder.netlist.evaluate(assign(word, 0))
        assert values[zero] == 1


class TestWordHelpers:
    def test_constants(self):
        builder = CircuitBuilder()
        word = builder.constant_word(5, 4)
        assert word[0] == Netlist.CONST_ONE
        assert word[1] == Netlist.CONST_ZERO
        with pytest.raises(SynthesisError):
            builder.constant_word(16, 4)

    def test_extensions_and_shift(self):
        builder = CircuitBuilder()
        word = builder.input_word(3)
        assert len(builder.zero_extend(word, 6)) == 6
        assert len(builder.sign_extend(word, 6)) == 6
        assert len(builder.shift_left(word, 2)) == 5
        assert builder.fit_width(word, 2) == word[:2]
        with pytest.raises(SynthesisError):
            builder.zero_extend(word, 2)

    def test_input_word_validation(self):
        with pytest.raises(SynthesisError):
            CircuitBuilder().input_word(0)


class TestAdders:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_ripple_adder(self, a, b):
        builder = CircuitBuilder()
        x = builder.input_word(4)
        y = builder.input_word(4)
        total, carry = builder.ripple_adder(x, y)
        builder.mark_output_word(total)
        builder.mark_output_bit(carry)
        inputs = {**assign(x, a), **assign(y, b)}
        values = builder.netlist.evaluate(inputs)
        result = sum(values[s] << i for i, s in enumerate(total)) + (values[carry] << 4)
        assert result == a + b

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_subtract(self, a, b):
        builder = CircuitBuilder()
        x = builder.input_word(4)
        y = builder.input_word(4)
        difference, no_borrow = builder.subtract(x, y)
        builder.mark_output_word(difference)
        builder.mark_output_bit(no_borrow)
        inputs = {**assign(x, a), **assign(y, b)}
        values = builder.netlist.evaluate(inputs)
        assert sum(values[s] << i for i, s in enumerate(difference)) == (a - b) % 16
        assert values[no_borrow] == (1 if a >= b else 0)

    @given(st.integers(0, 15))
    @settings(max_examples=16, deadline=None)
    def test_increment_and_negate(self, a):
        builder = CircuitBuilder()
        x = builder.input_word(4)
        plus_one = builder.increment(x)
        negated = builder.negate(x)
        builder.mark_output_word(plus_one, "inc")
        builder.mark_output_word(negated, "neg")
        values = builder.netlist.evaluate(assign(x, a))
        assert sum(values[s] << i for i, s in enumerate(plus_one)) == (a + 1) % 16
        assert sum(values[s] << i for i, s in enumerate(negated)) == (-a) % 16

    def test_adder_width_mismatch(self):
        builder = CircuitBuilder()
        with pytest.raises(SynthesisError):
            builder.ripple_adder(builder.input_word(3), builder.input_word(4))

    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=20, deadline=None)
    def test_comparator(self, a, b):
        builder = CircuitBuilder()
        x = builder.input_word(5)
        y = builder.input_word(5)
        ge = builder.greater_equal_unsigned(x, y)
        eq = builder.equals(x, y)
        builder.mark_output_bit(ge)
        builder.mark_output_bit(eq)
        values = builder.netlist.evaluate({**assign(x, a), **assign(y, b)})
        assert values[ge] == (1 if a >= b else 0)
        assert values[eq] == (1 if a == b else 0)


class TestMultipliers:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_shift_add_multiplier(self, a, b):
        builder = CircuitBuilder()
        x = builder.input_word(4)
        y = builder.input_word(4)
        product = builder.multiply_unsigned(x, y)
        builder.mark_output_word(product)
        assert evaluate_word(builder.netlist, {**assign(x, a), **assign(y, b)}, product) == a * b

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_wallace_multiplier(self, a, b):
        builder = CircuitBuilder()
        x = builder.input_word(4)
        y = builder.input_word(4)
        product = builder.multiply_wallace(x, y)
        builder.mark_output_word(product)
        assert evaluate_word(builder.netlist, {**assign(x, a), **assign(y, b)}, product) == a * b

    def test_wallace_is_shallower_than_shift_add(self):
        shift_add = CircuitBuilder()
        x = shift_add.input_word(6)
        y = shift_add.input_word(6)
        shift_add.mark_output_word(shift_add.multiply_unsigned(x, y))
        wallace = CircuitBuilder()
        u = wallace.input_word(6)
        v = wallace.input_word(6)
        wallace.mark_output_word(wallace.multiply_wallace(u, v))
        assert wallace.netlist.depth < shift_add.netlist.depth

    @given(st.integers(0, 15), st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_multiply_by_constant(self, a, constant):
        builder = CircuitBuilder()
        x = builder.input_word(4)
        product = builder.multiply_by_constant(x, constant)
        builder.mark_output_word(product)
        assert evaluate_word(builder.netlist, assign(x, a), product) == a * constant

    @given(st.integers(0, 255), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_mac(self, acc, a, b):
        builder = CircuitBuilder()
        accumulator = builder.input_word(10)
        x = builder.input_word(4)
        y = builder.input_word(4)
        result = builder.mac(accumulator, x, y)
        builder.mark_output_word(result)
        inputs = {**assign(accumulator, acc), **assign(x, a), **assign(y, b)}
        assert evaluate_word(builder.netlist, inputs, result) == (acc + a * b) % (1 << 10)

    def test_empty_operands_rejected(self):
        builder = CircuitBuilder()
        with pytest.raises(SynthesisError):
            builder.multiply_unsigned([], builder.input_word(2))


class TestCarrySaveArithmetic:
    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=20, deadline=None)
    def test_carry_save_add3(self, a, b, c):
        builder = CircuitBuilder()
        x = builder.input_word(6)
        y = builder.input_word(6)
        z = builder.input_word(6)
        total, carry = builder.carry_save_add3(x, y, z)
        builder.mark_output_word(total, "s")
        builder.mark_output_word(carry, "c")
        inputs = {**assign(x, a), **assign(y, b), **assign(z, c)}
        s_val = evaluate_word(builder.netlist, inputs, total)
        c_val = evaluate_word(builder.netlist, inputs, carry)
        assert s_val + c_val == a + b + c

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_carry_save_reduce(self, addends):
        builder = CircuitBuilder()
        words = [builder.input_word(5, f"w{i}") for i in range(len(addends))]
        total, carry = builder.carry_save_reduce(words, width=9)
        final = builder.finalize_carry_save(total, carry, 9)
        builder.mark_output_word(final)
        inputs = {}
        for word, value in zip(words, addends):
            inputs.update(assign(word, value))
        assert evaluate_word(builder.netlist, inputs, final) == sum(addends) % (1 << 9)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_mac_carry_save(self, acc_s, acc_c, a, b):
        builder = CircuitBuilder()
        sum_word = builder.input_word(10, "s")
        carry_word = builder.input_word(10, "c")
        x = builder.input_word(4, "a")
        y = builder.input_word(4, "b")
        new_sum, new_carry = builder.mac_carry_save(sum_word, carry_word, x, y, width=10)
        final = builder.finalize_carry_save(new_sum, new_carry, 10)
        builder.mark_output_word(final)
        inputs = {
            **assign(sum_word, acc_s),
            **assign(carry_word, acc_c),
            **assign(x, a),
            **assign(y, b),
        }
        expected = (acc_s + acc_c + a * b) % (1 << 10)
        assert evaluate_word(builder.netlist, inputs, final) == expected

    def test_carry_save_reduce_rejects_empty(self):
        with pytest.raises(SynthesisError):
            CircuitBuilder().carry_save_reduce([])

    def test_carry_save_levels_are_wide(self):
        # The whole point of the carry-save form: levels contain many
        # independent gates (bit positions are decoupled).
        builder = CircuitBuilder()
        x = builder.input_word(8)
        y = builder.input_word(8)
        total, carry = builder.multiply_carry_save(x, y)
        builder.mark_output_word(builder.fit_width(total, 16))
        builder.mark_output_word(builder.fit_width(carry, 16), "c")
        stats = builder.netlist.stats()
        assert stats.max_level_width >= 8
