"""Tests for the netlist representation and logic levelisation."""

import pytest

from repro.compiler.netlist import Netlist
from repro.errors import SynthesisError
from repro.pim.gates import GateType


def build_and_netlist():
    """o3 = a AND b via three NORs (the Fig. 6 example circuit)."""
    netlist = Netlist(name="and")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    o1 = netlist.add_gate(GateType.NOT, [a])
    o2 = netlist.add_gate(GateType.NOT, [b])
    o3 = netlist.add_gate(GateType.NOR, [o1, o2])
    netlist.mark_output(o3, "out")
    return netlist, (a, b, o1, o2, o3)


class TestConstruction:
    def test_inputs_and_outputs(self):
        netlist, (a, b, o1, o2, o3) = build_and_netlist()
        assert netlist.inputs == (a, b)
        assert netlist.outputs == (o3,)
        assert netlist.input_name(a) == "a"
        assert netlist.output_name(o3) == "out"

    def test_signal_count(self):
        netlist, _ = build_and_netlist()
        assert netlist.n_signals == 5

    def test_producer_and_consumers(self):
        netlist, (a, b, o1, o2, o3) = build_and_netlist()
        assert netlist.producer_of(o1).gate == GateType.NOT
        assert netlist.producer_of(a) is None
        assert [g.output for g in netlist.consumers_of(o1)] == [o3]

    def test_unknown_signal_rejected(self):
        netlist = Netlist()
        with pytest.raises(SynthesisError):
            netlist.add_gate(GateType.NOT, [42])

    def test_constants_always_available(self):
        netlist = Netlist()
        out = netlist.add_gate(GateType.NOR, [Netlist.CONST_ZERO, Netlist.CONST_ONE])
        netlist.mark_output(out)
        assert netlist.evaluate({})[out] == 0

    def test_validate_requires_outputs(self):
        netlist, _ = build_and_netlist()
        netlist.validate()
        empty = Netlist()
        empty.add_input()
        with pytest.raises(SynthesisError):
            empty.validate()

    def test_mark_output_idempotent(self):
        netlist, (_, _, _, _, o3) = build_and_netlist()
        netlist.mark_output(o3)
        assert netlist.outputs == (o3,)

    def test_multi_output_gate_node(self):
        netlist = Netlist()
        a = netlist.add_input()
        out = netlist.add_gate(GateType.NOR, [a], n_outputs=2)
        assert netlist.producer_of(out).n_outputs == 2

    def test_invalid_gate_parameters(self):
        netlist = Netlist()
        a = netlist.add_input()
        with pytest.raises(SynthesisError):
            netlist.add_gate("flipflop", [a])
        with pytest.raises(SynthesisError):
            netlist.add_gate(GateType.NOR, [a], n_outputs=0)


class TestLevelisation:
    def test_and_circuit_has_two_levels(self):
        netlist, (_, _, o1, o2, o3) = build_and_netlist()
        levels = netlist.levelize()
        assert len(levels) == 2
        assert sorted(levels[0]) == [0, 1]
        assert levels[1] == [2]
        assert netlist.depth == 2

    def test_levels_respect_dependencies(self):
        netlist = Netlist()
        a = netlist.add_input()
        x = netlist.add_gate(GateType.NOT, [a])
        y = netlist.add_gate(GateType.NOT, [x])
        z = netlist.add_gate(GateType.NOR, [a, y])
        netlist.mark_output(z)
        levels = netlist.levelize()
        assert len(levels) == 3

    def test_cache_invalidated_on_new_gate(self):
        netlist, (_, _, _, _, o3) = build_and_netlist()
        assert netlist.depth == 2
        extra = netlist.add_gate(GateType.NOT, [o3])
        netlist.mark_output(extra)
        assert netlist.depth == 3


class TestEvaluation:
    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)])
    def test_and_truth_table(self, a, b, expected):
        netlist, signals = build_and_netlist()
        values = netlist.evaluate({signals[0]: a, signals[1]: b})
        assert values[signals[4]] == expected

    def test_evaluate_outputs_only(self):
        netlist, signals = build_and_netlist()
        outputs = netlist.evaluate_outputs({signals[0]: 1, signals[1]: 1})
        assert outputs == {signals[4]: 1}

    def test_missing_input_rejected(self):
        netlist, signals = build_and_netlist()
        with pytest.raises(SynthesisError):
            netlist.evaluate({signals[0]: 1})

    def test_non_bit_input_rejected(self):
        netlist, signals = build_and_netlist()
        with pytest.raises(SynthesisError):
            netlist.evaluate({signals[0]: 2, signals[1]: 0})

    def test_thr_gate_with_custom_threshold(self):
        netlist = Netlist()
        a, b, c = (netlist.add_input() for _ in range(3))
        out = netlist.add_gate(GateType.THR, [a, b, c], threshold=2)
        netlist.mark_output(out)
        assert netlist.evaluate({a: 0, b: 0, c: 1})[out] == 1
        assert netlist.evaluate({a: 1, b: 1, c: 0})[out] == 0


class TestStatsAndLiveness:
    def test_stats(self):
        netlist, _ = build_and_netlist()
        stats = netlist.stats()
        assert stats.n_inputs == 2
        assert stats.n_gates == 3
        assert stats.n_levels == 2
        assert stats.gates_by_type == {GateType.NOT: 2, GateType.NOR: 1}
        assert stats.max_level_width == 2
        assert stats.average_level_width == pytest.approx(1.5)

    def test_per_level_stats(self):
        netlist, _ = build_and_netlist()
        levels = netlist.stats().levels
        assert levels[0].n_gates == 2
        assert levels[1].n_gates == 1
        assert levels[0].n_thr == 0

    def test_last_use(self):
        netlist, (a, b, o1, o2, o3) = build_and_netlist()
        last = netlist.last_use()
        assert last[o1] == 2  # consumed by gate index 2
        assert last[o3] == 3  # circuit output lives to the end (horizon)
        assert last[a] == 0
