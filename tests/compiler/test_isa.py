"""Tests for the binary instruction translation (compiler flow step 3)."""

import pytest

from repro.compiler.allocator import GreedyAllocator
from repro.compiler.isa import InstructionEncoder, PimInstruction
from repro.compiler.netlist import Netlist
from repro.compiler.scheduler import RowScheduler
from repro.compiler.synthesis import CircuitBuilder
from repro.errors import CompilerError
from repro.pim.technology import RERAM, STT_MRAM


def compiled_adder(partitions=2):
    builder = CircuitBuilder()
    a = builder.input_word(2, "a")
    b = builder.input_word(2, "b")
    total, carry = builder.ripple_adder(a, b)
    builder.mark_output_word(total)
    builder.mark_output_bit(carry)
    netlist = builder.netlist
    schedule = RowScheduler(partitions).schedule(netlist)
    allocation = GreedyAllocator(capacity=netlist.n_signals + 4).allocate(netlist)
    columns = dict(allocation.cell_of_signal)
    columns[Netlist.CONST_ZERO] = 200
    columns[Netlist.CONST_ONE] = 201
    return netlist, schedule, columns


class TestBiasSelection:
    def test_bias_within_feasible_window(self):
        encoder = InstructionEncoder(STT_MRAM)
        from repro.pim.electrical import mram_bias_window

        window = mram_bias_window(STT_MRAM, 1)
        assert window.v_low < encoder.bias_for("nor", 1) < window.v_high

    def test_bias_cached(self):
        encoder = InstructionEncoder(STT_MRAM)
        assert encoder.bias_for("nor", 2) == encoder.bias_for("nor", 2)

    def test_reram_bias_differs_from_stt(self):
        assert InstructionEncoder(RERAM).bias_for("nor") != pytest.approx(
            InstructionEncoder(STT_MRAM).bias_for("nor")
        )


class TestScheduleEncoding:
    def test_one_instruction_per_gate(self):
        netlist, schedule, columns = compiled_adder()
        instructions = InstructionEncoder(STT_MRAM).encode_schedule(netlist, schedule, columns)
        assert len(instructions) == netlist.stats().n_gates
        assert all(isinstance(i, PimInstruction) and i.is_gate for i in instructions)

    def test_instruction_columns_match_allocation(self):
        netlist, schedule, columns = compiled_adder()
        instructions = InstructionEncoder(STT_MRAM).encode_schedule(netlist, schedule, columns)
        gate_by_index = {g.index: g for g in netlist.gates}
        flat = [g for step in schedule.steps for g in step.gate_indices]
        for instruction, gate_index in zip(instructions, flat):
            node = gate_by_index[gate_index]
            assert instruction.output_columns == (columns[node.output],)

    def test_missing_column_mapping_raises(self):
        netlist, schedule, columns = compiled_adder()
        del columns[Netlist.CONST_ZERO]
        with pytest.raises(CompilerError):
            InstructionEncoder(STT_MRAM).encode_schedule(netlist, schedule, columns)

    def test_partition_masks_within_width(self):
        netlist, schedule, columns = compiled_adder(partitions=4)
        instructions = InstructionEncoder(STT_MRAM).encode_schedule(netlist, schedule, columns)
        assert all(0 < i.partition_mask <= 0b1000 for i in instructions)


class TestPackedEncoding:
    def test_roundtrip(self):
        netlist, schedule, columns = compiled_adder()
        encoder = InstructionEncoder(STT_MRAM)
        instructions = encoder.encode_schedule(netlist, schedule, columns)
        for instruction in instructions:
            if len(instruction.input_columns) > 4:
                continue
            word = encoder.encode_word(instruction)
            opcode, inputs, output, mask = encoder.decode_word(word, len(instruction.input_columns))
            assert opcode == instruction.opcode
            assert inputs == instruction.input_columns
            assert output == instruction.output_columns[0]
            assert mask == instruction.partition_mask

    def test_column_overflow_rejected(self):
        encoder = InstructionEncoder(STT_MRAM, column_bits=4)
        instruction = PimInstruction(
            opcode="nor",
            step=0,
            logic_level=1,
            input_columns=(3, 200),
            output_columns=(1,),
            bias_voltage=0.3,
            partition_mask=1,
        )
        with pytest.raises(CompilerError):
            encoder.encode_word(instruction)

    def test_invalid_column_bits(self):
        with pytest.raises(CompilerError):
            InstructionEncoder(STT_MRAM, column_bits=0)

    def test_decode_unknown_opcode(self):
        encoder = InstructionEncoder(STT_MRAM)
        with pytest.raises(CompilerError):
            encoder.decode_word(0xF, 2)
