"""Tests for the greedy scratch allocator and area-reclaim counting."""

import pytest

from repro.compiler.allocator import GreedyAllocator, reclaim_count_for_demand
from repro.compiler.synthesis import CircuitBuilder
from repro.errors import AllocationError


def adder_netlist(width=4):
    builder = CircuitBuilder()
    a = builder.input_word(width, "a")
    b = builder.input_word(width, "b")
    total, carry = builder.ripple_adder(a, b)
    builder.mark_output_word(total)
    builder.mark_output_bit(carry)
    return builder.netlist


class TestGreedyAllocator:
    def test_large_capacity_needs_no_reclaims(self):
        netlist = adder_netlist()
        result = GreedyAllocator(capacity=netlist.n_signals + 8).allocate(netlist)
        assert result.fits_without_reclaims
        assert result.n_reclaims == 0
        assert result.average_cells_per_reclaim == 0.0

    def test_tight_capacity_triggers_reclaims(self):
        netlist = adder_netlist()
        # Well below the total number of cell claims, but comfortably above
        # the circuit's true live set, so allocation succeeds via reclaims.
        tight = GreedyAllocator(capacity=len(netlist.inputs) + 12).allocate(netlist)
        assert tight.n_reclaims > 0
        assert tight.reclaimed_cells_total > 0
        assert len(tight.reclaim_gate_indices) == tight.n_reclaims

    def test_tighter_capacity_means_more_reclaims(self):
        netlist = adder_netlist(width=6)
        loose = GreedyAllocator(capacity=60).allocate(netlist)
        tight = GreedyAllocator(capacity=40).allocate(netlist)
        assert tight.n_reclaims >= loose.n_reclaims

    def test_impossible_capacity_raises(self):
        netlist = adder_netlist()
        with pytest.raises(AllocationError):
            # Not even the primary inputs fit.
            GreedyAllocator(capacity=4).allocate(netlist)

    def test_every_signal_gets_a_cell(self):
        netlist = adder_netlist()
        result = GreedyAllocator(capacity=netlist.n_signals + 8).allocate(netlist)
        for gate in netlist.gates:
            assert gate.output in result.cell_of_signal
        assigned = list(result.cell_of_signal.values())
        assert all(0 <= cell < result.capacity for cell in assigned)

    def test_without_input_preallocation(self):
        netlist = adder_netlist()
        result = GreedyAllocator(capacity=netlist.n_signals).allocate(
            netlist, preallocate_inputs=False
        )
        for signal in netlist.inputs:
            assert signal not in result.cell_of_signal

    def test_capacity_must_be_positive(self):
        with pytest.raises(AllocationError):
            GreedyAllocator(capacity=0)

    def test_multi_output_gates_claim_extra_cells(self):
        builder = CircuitBuilder(use_multi_output=True)
        a, b = builder.input_bit(), builder.input_bit()
        builder.mark_output_bit(builder.xor(a, b))
        single = CircuitBuilder(use_multi_output=False)
        c, d = single.input_bit(), single.input_bit()
        single.mark_output_bit(single.xor(c, d))
        multi_result = GreedyAllocator(capacity=16).allocate(builder.netlist)
        single_result = GreedyAllocator(capacity=16).allocate(single.netlist)
        # Both decompositions occupy cells for the copy of the NOR output,
        # whether it is produced by a second output or an explicit CP gate.
        assert multi_result.peak_live_cells == single_result.peak_live_cells


class TestAnalyticReclaimModel:
    def test_no_reclaims_when_demand_fits(self):
        assert reclaim_count_for_demand(100, 200) == 0

    def test_reclaims_grow_with_demand(self):
        small = reclaim_count_for_demand(1000, 100)
        large = reclaim_count_for_demand(2000, 100)
        assert large > small

    def test_reclaims_shrink_with_capacity(self):
        tight = reclaim_count_for_demand(1000, 50)
        loose = reclaim_count_for_demand(1000, 200)
        assert tight > loose

    def test_live_fraction_increases_reclaims(self):
        relaxed = reclaim_count_for_demand(1000, 100, live_fraction=0.1)
        pinned = reclaim_count_for_demand(1000, 100, live_fraction=0.8)
        assert pinned > relaxed

    def test_invalid_parameters(self):
        with pytest.raises(AllocationError):
            reclaim_count_for_demand(10, 0)
        with pytest.raises(AllocationError):
            reclaim_count_for_demand(10, 10, live_fraction=1.0)
