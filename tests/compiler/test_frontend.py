"""Tests for the expression-level compiler frontend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.frontend import PimProgram
from repro.core.executor import EcimExecutor, UnprotectedExecutor
from repro.errors import SynthesisError


class TestProgramConstruction:
    def test_inputs_and_outputs(self):
        program = PimProgram("p")
        a = program.input("a", 4)
        program.output("y", a + 1)
        netlist = program.compile()
        assert netlist.stats().n_inputs == 4
        assert netlist.stats().n_outputs >= 4

    def test_compile_requires_outputs(self):
        program = PimProgram()
        program.input("a", 2)
        with pytest.raises(SynthesisError):
            program.compile()

    def test_no_new_io_after_compile(self):
        program = PimProgram()
        a = program.input("a", 2)
        program.output("y", a)
        program.compile()
        with pytest.raises(SynthesisError):
            program.input("b", 2)
        with pytest.raises(SynthesisError):
            program.output("z", a)

    def test_cannot_mix_programs(self):
        p1, p2 = PimProgram("p1"), PimProgram("p2")
        a = p1.input("a", 2)
        b = p2.input("b", 2)
        with pytest.raises(SynthesisError):
            _ = a + b

    def test_literal_validation(self):
        program = PimProgram()
        with pytest.raises(SynthesisError):
            program.literal(-1)
        with pytest.raises(SynthesisError):
            program.literal(16, bits=4)

    def test_input_value_validation(self):
        program = PimProgram()
        a = program.input("a", 3)
        program.output("y", a)
        program.compile()
        with pytest.raises(SynthesisError):
            program.input_assignment({"a": 9})
        with pytest.raises(SynthesisError):
            program.input_assignment({})

    def test_shared_subexpressions_lowered_once(self):
        program = PimProgram()
        a = program.input("a", 4)
        b = program.input("b", 4)
        product = a * b
        program.output("x", product + 1)
        program.output("y", product + 2)
        shared = program.compile().stats().n_gates

        duplicated = PimProgram()
        c = duplicated.input("a", 4)
        d = duplicated.input("b", 4)
        duplicated.output("x", (c * d) + 1)
        duplicated.output("y", (c * d) + 2)
        assert shared < duplicated.compile().stats().n_gates


class TestArithmeticSemantics:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=12, deadline=None)
    def test_mac_expression(self, a, b, c):
        program = PimProgram()
        x = program.input("x", 4)
        y = program.input("y", 4)
        z = program.input("z", 4)
        program.output("out", (x * y + z).resize(10))
        netlist = program.compile()
        outputs = netlist.evaluate_outputs(program.input_assignment({"x": a, "y": b, "z": c}))
        assert program.decode_outputs(outputs)["out"] == (a * b + c) % (1 << 10)

    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=12, deadline=None)
    def test_sub_and_compare(self, a, b):
        program = PimProgram()
        x = program.input("x", 5)
        y = program.input("y", 5)
        program.output("difference", x - y)
        program.output("ge", x >= y)
        program.output("eq", x == y)
        netlist = program.compile()
        decoded = program.decode_outputs(
            netlist.evaluate_outputs(program.input_assignment({"x": a, "y": b}))
        )
        assert decoded["difference"] == (a - b) % 32
        assert decoded["ge"] == int(a >= b)
        assert decoded["eq"] == int(a == b)

    @given(st.integers(0, 255))
    @settings(max_examples=10, deadline=None)
    def test_bitwise_and_shifts(self, a):
        program = PimProgram()
        x = program.input("x", 8)
        program.output("masked", x & 0b10110101)
        program.output("inverted", (~x).resize(8))
        program.output("halved", x >> 1)
        program.output("doubled", (x << 1).resize(9))
        netlist = program.compile()
        decoded = program.decode_outputs(
            netlist.evaluate_outputs(program.input_assignment({"x": a}))
        )
        assert decoded["masked"] == a & 0b10110101
        assert decoded["inverted"] == (~a) & 0xFF
        assert decoded["halved"] == a >> 1
        assert decoded["doubled"] == (a << 1) & 0x1FF

    def test_xor_or_semantics(self):
        program = PimProgram()
        x = program.input("x", 4)
        y = program.input("y", 4)
        program.output("xor", x ^ y)
        program.output("or", x | y)
        netlist = program.compile()
        decoded = program.decode_outputs(
            netlist.evaluate_outputs(program.input_assignment({"x": 0b1100, "y": 0b1010}))
        )
        assert decoded["xor"] == 0b0110
        assert decoded["or"] == 0b1110


class TestProtectedExecution:
    def test_program_runs_under_ecim(self):
        program = PimProgram()
        x = program.input("x", 3)
        y = program.input("y", 3)
        program.output("out", (x * y + 2).resize(8))
        netlist = program.compile()
        inputs = program.input_assignment({"x": 5, "y": 6})
        golden = program.decode_outputs(netlist.evaluate_outputs(inputs))
        for executor_cls in (UnprotectedExecutor, EcimExecutor):
            report = executor_cls(netlist).run(dict(inputs))
            assert program.decode_outputs(report.outputs) == golden
