"""Tests for the partition-aware row scheduler."""

import pytest

from repro.compiler.scheduler import RowScheduler
from repro.compiler.synthesis import CircuitBuilder
from repro.errors import SchedulingError


def sample_netlist():
    builder = CircuitBuilder()
    a = builder.input_word(4, "a")
    b = builder.input_word(4, "b")
    total, carry = builder.ripple_adder(a, b)
    builder.mark_output_word(total)
    builder.mark_output_bit(carry)
    return builder.netlist


class TestScheduling:
    def test_single_partition_is_fully_serial(self):
        netlist = sample_netlist()
        schedule = RowScheduler(n_partitions=1).schedule(netlist)
        assert schedule.n_steps == netlist.stats().n_gates
        assert schedule.n_gates == netlist.stats().n_gates

    def test_more_partitions_means_fewer_steps(self):
        netlist = sample_netlist()
        serial = RowScheduler(1).schedule(netlist)
        parallel = RowScheduler(4).schedule(netlist)
        assert parallel.n_steps < serial.n_steps
        assert parallel.n_gates == serial.n_gates

    def test_steps_never_exceed_partition_count(self):
        netlist = sample_netlist()
        schedule = RowScheduler(3).schedule(netlist)
        assert all(step.n_gates <= 3 for step in schedule.steps)

    def test_steps_only_mix_gates_from_one_level(self):
        netlist = sample_netlist()
        levels = netlist.levelize()
        level_of = {g: i + 1 for i, level in enumerate(levels) for g in level}
        schedule = RowScheduler(4).schedule(netlist)
        for step in schedule.steps:
            assert len({level_of[g] for g in step.gate_indices}) == 1
            assert all(level_of[g] == step.logic_level for g in step.gate_indices)

    def test_every_gate_scheduled_exactly_once(self):
        netlist = sample_netlist()
        schedule = RowScheduler(4).schedule(netlist)
        scheduled = [g for step in schedule.steps for g in step.gate_indices]
        assert sorted(scheduled) == list(range(netlist.stats().n_gates))

    def test_steps_per_level(self):
        netlist = sample_netlist()
        schedule = RowScheduler(2).schedule(netlist)
        per_level = schedule.steps_per_level()
        for level_number, gates in enumerate(netlist.levelize(), start=1):
            assert per_level[level_number] == -(-len(gates) // 2)

    def test_utilization_bounds(self):
        netlist = sample_netlist()
        schedule = RowScheduler(4).schedule(netlist)
        assert 0.0 < schedule.utilization() <= 1.0

    def test_serial_steps_helper(self):
        scheduler = RowScheduler(4)
        assert scheduler.serial_steps_for_level(0) == 0
        assert scheduler.serial_steps_for_level(4) == 1
        assert scheduler.serial_steps_for_level(5) == 2
        with pytest.raises(SchedulingError):
            scheduler.serial_steps_for_level(-1)

    def test_invalid_partition_count(self):
        with pytest.raises(SchedulingError):
            RowScheduler(0)

    def test_steps_in_level_accessor(self):
        netlist = sample_netlist()
        schedule = RowScheduler(2).schedule(netlist)
        first_level_steps = schedule.steps_in_level(1)
        assert all(s.logic_level == 1 for s in first_level_steps)
        assert first_level_steps
