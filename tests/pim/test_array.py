"""Tests for the behavioural PiM array: memory semantics, in-array gates,
partitions and fault-injection hooks."""

import numpy as np
import pytest

from repro.errors import ArrayBoundsError, GateOperandError, PartitionError, PimError
from repro.pim.array import DEFAULT_ARRAY_COLS, DEFAULT_ARRAY_ROWS, PartitionLayout, PimArray
from repro.pim.faults import DeterministicFaultInjector, StochasticFaultInjector, FaultModel
from repro.pim.operations import OperationKind


@pytest.fixture
def array():
    return PimArray(rows=8, cols=32)


class TestPartitionLayout:
    def test_uniform_split(self):
        layout = PartitionLayout.uniform(32, 4)
        assert layout.n_partitions == 4
        assert list(layout.columns_of(0)) == list(range(0, 8))
        assert list(layout.columns_of(3)) == list(range(24, 32))

    def test_uneven_split_covers_all_columns(self):
        layout = PartitionLayout.uniform(10, 3)
        covered = [c for p in range(3) for c in layout.columns_of(p)]
        assert covered == list(range(10))

    def test_partition_of(self):
        layout = PartitionLayout.uniform(32, 4)
        assert layout.partition_of(0) == 0
        assert layout.partition_of(9) == 1
        assert layout.partition_of(31) == 3

    def test_partitions_of_set(self):
        layout = PartitionLayout.uniform(32, 4)
        assert layout.partitions_of([0, 9, 10]) == (0, 1)

    def test_invalid_boundaries(self):
        with pytest.raises(PartitionError):
            PartitionLayout(8, [0, 5, 4, 8])
        with pytest.raises(PartitionError):
            PartitionLayout(8, [1, 8])

    def test_too_many_partitions(self):
        with pytest.raises(PartitionError):
            PartitionLayout.uniform(4, 8)

    def test_column_out_of_range(self):
        layout = PartitionLayout.uniform(8, 2)
        with pytest.raises(ArrayBoundsError):
            layout.partition_of(8)


class TestMemorySemantics:
    def test_default_dimensions_match_paper(self):
        array = PimArray()
        assert array.rows == DEFAULT_ARRAY_ROWS == 256
        assert array.cols == DEFAULT_ARRAY_COLS == 256

    def test_cells_initialised_to_zero(self, array):
        assert array.occupancy() == 0.0

    def test_write_and_read_cell(self, array):
        array.write_cell(2, 5, 1)
        assert array.read_cell(2, 5) == 1

    def test_write_rejects_non_bit(self, array):
        with pytest.raises(PimError):
            array.write_cell(0, 0, 7)

    def test_bounds_checking(self, array):
        with pytest.raises(ArrayBoundsError):
            array.read_cell(100, 0)
        with pytest.raises(ArrayBoundsError):
            array.read_cell(0, 100)

    def test_load_and_dump_row(self, array):
        array.load_row(1, [1, 0, 1, 1], start_col=3)
        assert array.dump_row(1, [3, 4, 5, 6]) == [1, 0, 1, 1]

    def test_load_row_overflow(self, array):
        with pytest.raises(ArrayBoundsError):
            array.load_row(0, [1] * 40)

    def test_read_row_records_operation(self, array):
        array.load_row(0, [1, 1, 0, 0])
        values = array.read_row(0, [0, 1, 2, 3], logic_level=2)
        assert values == [1, 1, 0, 0]
        reads = [r for r in array.trace if r.kind == OperationKind.READ]
        assert len(reads) == 1
        assert reads[0].n_bits == 4
        assert reads[0].logic_level == 2

    def test_write_row_records_operation(self, array):
        array.write_row(0, [0, 1, 2], [1, 0, 1])
        assert array.dump_row(0, [0, 1, 2]) == [1, 0, 1]
        writes = [r for r in array.trace if r.kind == OperationKind.WRITE]
        assert len(writes) == 1

    def test_write_row_length_mismatch(self, array):
        with pytest.raises(PimError):
            array.write_row(0, [0, 1], [1])

    def test_snapshot_restore(self, array):
        array.write_cell(0, 0, 1)
        snap = array.snapshot()
        array.write_cell(0, 0, 0)
        array.restore(snap)
        assert array.read_cell(0, 0) == 1

    def test_restore_shape_mismatch(self, array):
        with pytest.raises(PimError):
            array.restore(np.zeros((2, 2), dtype=np.uint8))

    def test_clear(self, array):
        array.write_cell(0, 0, 1)
        array.clear()
        assert array.occupancy() == 0.0


class TestInArrayGates:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)]
    )
    def test_nor_truth_table_on_cells(self, array, a, b, expected):
        array.load_row(0, [a, b])
        (out,) = array.execute_gate("nor", 0, [0, 1], [2])
        assert out == expected
        assert array.read_cell(0, 2) == expected

    def test_multi_output_gate_produces_identical_copies(self, array):
        array.load_row(0, [0, 0])
        outputs = array.execute_gate("nor", 0, [0, 1], [2, 3, 4])
        assert outputs == (1, 1, 1)
        assert array.dump_row(0, [2, 3, 4]) == [1, 1, 1]

    def test_thr_gate_with_threshold(self, array):
        array.load_row(0, [0, 0, 1])
        (out,) = array.execute_gate("thr", 0, [0, 1, 2], [3], threshold=2)
        assert out == 1

    def test_preset_happens_before_gate(self, array):
        # Pre-write the output cell to 1; NOR of (1,1) must preset it to 0.
        array.load_row(0, [1, 1])
        array.write_cell(0, 2, 1)
        (out,) = array.execute_gate("nor", 0, [0, 1], [2])
        assert out == 0

    def test_gate_without_preset_keeps_semantics(self, array):
        array.load_row(0, [0, 0])
        (out,) = array.execute_gate("nor", 0, [0, 1], [2], preset=False)
        assert out == 1

    def test_gate_records_operation_with_metadata_flag(self, array):
        array.execute_gate("nor", 0, [0, 1], [2], logic_level=3, is_metadata=True)
        gates = [r for r in array.trace if r.kind == OperationKind.GATE]
        assert gates[0].is_metadata
        assert gates[0].logic_level == 3

    def test_operation_index_increments(self, array):
        assert array.operation_index == 0
        array.execute_gate("nor", 0, [0, 1], [2])
        array.execute_gate("nor", 0, [0, 1], [3])
        assert array.operation_index == 2

    def test_input_output_overlap_rejected(self, array):
        with pytest.raises(GateOperandError):
            array.execute_gate("nor", 0, [0, 1], [1])

    def test_unknown_gate_rejected(self, array):
        with pytest.raises(GateOperandError):
            array.execute_gate("xor", 0, [0, 1], [2])

    def test_no_output_rejected(self, array):
        with pytest.raises(GateOperandError):
            array.execute_gate("nor", 0, [0, 1], [])

    def test_out_of_range_columns_rejected(self, array):
        with pytest.raises(ArrayBoundsError):
            array.execute_gate("nor", 0, [0, 99], [2])


class TestPartitionSemantics:
    def test_parallel_gates_in_distinct_partitions_allowed(self):
        array = PimArray(rows=4, cols=32, partitions=4)
        array.begin_step()
        array.execute_gate("nor", 0, [0, 1], [2])     # partition 0
        array.execute_gate("nor", 0, [8, 9], [10])    # partition 1
        array.end_step()

    def test_conflicting_gates_in_same_partition_rejected(self):
        array = PimArray(rows=4, cols=32, partitions=4)
        array.begin_step()
        array.execute_gate("nor", 0, [0, 1], [2])
        with pytest.raises(PartitionError):
            array.execute_gate("nor", 0, [3, 4], [5])
        array.end_step()

    def test_gate_spanning_partitions_blocks_both(self):
        array = PimArray(rows=4, cols=32, partitions=4)
        array.begin_step()
        array.execute_gate("nor", 0, [0, 1], [9])  # spans partitions 0 and 1
        with pytest.raises(PartitionError):
            array.execute_gate("nor", 0, [10, 11], [12])  # partition 1 busy
        array.end_step()

    def test_different_rows_do_not_conflict(self):
        array = PimArray(rows=4, cols=32, partitions=4)
        array.begin_step()
        array.execute_gate("nor", 0, [0, 1], [2])
        array.execute_gate("nor", 1, [0, 1], [2])
        array.end_step()

    def test_step_bookkeeping_errors(self):
        array = PimArray(rows=4, cols=32)
        with pytest.raises(PartitionError):
            array.end_step()
        array.begin_step()
        with pytest.raises(PartitionError):
            array.begin_step()
        array.end_step()

    def test_repartition(self):
        array = PimArray(rows=4, cols=32, partitions=1)
        array.repartition(8)
        assert array.layout.n_partitions == 8

    def test_repartition_mid_step_rejected(self):
        array = PimArray(rows=4, cols=32)
        array.begin_step()
        with pytest.raises(PartitionError):
            array.repartition(2)
        array.end_step()


class TestFaultInjectionHooks:
    def test_deterministic_fault_on_gate_output(self):
        injector = DeterministicFaultInjector(target_operations={0: 1})
        array = PimArray(rows=4, cols=16, fault_injector=injector)
        array.load_row(0, [0, 0])
        (out,) = array.execute_gate("nor", 0, [0, 1], [2])
        assert out == 0  # correct value 1 flipped to 0
        assert injector.log.count() == 1

    def test_stochastic_memory_errors_on_read(self):
        injector = StochasticFaultInjector(FaultModel(memory_error_rate=1.0), seed=3)
        array = PimArray(rows=4, cols=8, fault_injector=injector)
        array.load_row(0, [1, 1, 1, 1])
        values = array.read_row(0, [0, 1, 2, 3])
        assert values == [0, 0, 0, 0]

    def test_fault_free_by_default(self):
        array = PimArray(rows=4, cols=8)
        array.load_row(0, [0, 0])
        assert array.execute_gate("nor", 0, [0, 1], [2]) == (1,)
        assert array.fault_injector.log.count() == 0
