"""Tests for the technology parameter sets (Table III)."""

import pytest

from repro.errors import TechnologyError
from repro.pim.technology import (
    RERAM,
    SOT_SHE_MRAM,
    STT_MRAM,
    ResistiveFamily,
    TechnologyParameters,
    available_technologies,
    get_technology,
    register_technology,
)


class TestTableIIIValues:
    """The canonical parameter sets must match Table III exactly."""

    def test_stt_resistances(self):
        assert STT_MRAM.r_low_kohm == pytest.approx(3.15)
        assert STT_MRAM.r_high_kohm == pytest.approx(7.34)

    def test_stt_critical_current(self):
        assert STT_MRAM.critical_current_ua == pytest.approx(50.0)

    def test_stt_energies(self):
        assert STT_MRAM.nor_energy_fj == pytest.approx(10.5)
        assert STT_MRAM.thr_energy_fj == pytest.approx(11.2)
        assert STT_MRAM.write_energy_fj == pytest.approx(1.03)

    def test_stt_switching_time(self):
        assert STT_MRAM.t_switch_ns == pytest.approx(1.0)

    def test_sot_resistances(self):
        assert SOT_SHE_MRAM.r_low_kohm == pytest.approx(253.97)
        assert SOT_SHE_MRAM.r_high_kohm == pytest.approx(507.94)
        assert SOT_SHE_MRAM.r_she_kohm == pytest.approx(64.0)

    def test_sot_critical_current(self):
        assert SOT_SHE_MRAM.critical_current_ua == pytest.approx(3.0)

    def test_sot_energies(self):
        assert SOT_SHE_MRAM.nor_energy_fj == pytest.approx(2.45)
        assert SOT_SHE_MRAM.thr_energy_fj == pytest.approx(1.31)
        assert SOT_SHE_MRAM.write_energy_fj == pytest.approx(0.01)

    def test_reram_resistances(self):
        assert RERAM.r_low_kohm == pytest.approx(10.0)
        assert RERAM.r_high_kohm == pytest.approx(1000.0)

    def test_reram_thresholds(self):
        assert RERAM.v_off == pytest.approx(0.3)
        assert RERAM.v_on == pytest.approx(-1.5)

    def test_reram_energies(self):
        assert RERAM.nor_energy_fj == pytest.approx(19.68)
        assert RERAM.thr_energy_fj == pytest.approx(20.99)
        assert RERAM.write_energy_fj == pytest.approx(23.8)

    def test_reram_switching_time(self):
        assert RERAM.t_switch_ns == pytest.approx(1.3)


class TestDerivedQuantities:
    def test_resistance_ratio_positive(self):
        for tech in (STT_MRAM, SOT_SHE_MRAM, RERAM):
            assert tech.resistance_ratio > 1.0

    def test_tmr_ratio_stt(self):
        # (7.34 - 3.15) / 3.15
        assert STT_MRAM.tmr_ratio == pytest.approx(1.33, abs=0.01)

    def test_is_mram_flags(self):
        assert STT_MRAM.is_mram
        assert SOT_SHE_MRAM.is_mram
        assert not RERAM.is_mram

    def test_output_resistance_uses_she_channel(self):
        assert SOT_SHE_MRAM.output_resistance_kohm == pytest.approx(64.0)
        assert STT_MRAM.output_resistance_kohm == pytest.approx(3.15)

    def test_table_row_contains_name(self):
        row = STT_MRAM.as_table_row()
        assert row["technology"] == "stt"
        assert row["NOR energy (fJ)"] == pytest.approx(10.5)


class TestGateEnergyModel:
    def test_single_output_nor(self):
        assert STT_MRAM.gate_energy_fj("nor") == pytest.approx(10.5)

    def test_single_output_thr(self):
        assert STT_MRAM.gate_energy_fj("thr") == pytest.approx(11.2)

    def test_multi_output_adds_write_energy(self):
        two = STT_MRAM.gate_energy_fj("nor", n_outputs=2)
        assert two == pytest.approx(10.5 + 1.03)

    def test_multi_output_linear_growth(self):
        e2 = STT_MRAM.gate_energy_fj("nor", 2)
        e3 = STT_MRAM.gate_energy_fj("nor", 3)
        e4 = STT_MRAM.gate_energy_fj("nor", 4)
        assert e3 - e2 == pytest.approx(e4 - e3)

    def test_preset_energy_is_write_energy(self):
        assert STT_MRAM.gate_energy_fj("preset", 3) == pytest.approx(3 * 1.03)

    def test_copy_uses_nor_energy(self):
        assert STT_MRAM.gate_energy_fj("copy") == pytest.approx(10.5)

    def test_unknown_gate_rejected(self):
        with pytest.raises(TechnologyError):
            STT_MRAM.gate_energy_fj("xor9")

    def test_zero_outputs_rejected(self):
        with pytest.raises(TechnologyError):
            STT_MRAM.gate_energy_fj("nor", 0)


class TestValidation:
    def test_rejects_negative_resistance(self):
        with pytest.raises(TechnologyError):
            TechnologyParameters(
                name="bad",
                family=ResistiveFamily.RERAM,
                r_low_kohm=-1.0,
                r_high_kohm=10.0,
                v_off=0.3,
                v_on=-1.5,
                t_switch_ns=1.0,
                nor_energy_fj=1.0,
                thr_energy_fj=1.0,
                write_energy_fj=1.0,
            )

    def test_rejects_rhigh_below_rlow(self):
        with pytest.raises(TechnologyError):
            STT_MRAM.replace(r_high_kohm=1.0)

    def test_rejects_unknown_family(self):
        with pytest.raises(TechnologyError):
            STT_MRAM.replace(family="flash")

    def test_mram_requires_critical_current(self):
        with pytest.raises(TechnologyError):
            STT_MRAM.replace(critical_current_ua=None)

    def test_reram_requires_thresholds(self):
        with pytest.raises(TechnologyError):
            RERAM.replace(v_off=None)

    def test_sot_requires_she_channel(self):
        with pytest.raises(TechnologyError):
            SOT_SHE_MRAM.replace(r_she_kohm=None)

    def test_replace_returns_new_instance(self):
        faster = STT_MRAM.replace(t_switch_ns=0.5)
        assert faster.t_switch_ns == pytest.approx(0.5)
        assert STT_MRAM.t_switch_ns == pytest.approx(1.0)


class TestRegistry:
    def test_three_canonical_technologies_registered(self):
        names = available_technologies()
        assert {"stt", "sot", "reram"}.issubset(set(names))

    def test_lookup_by_name(self):
        assert get_technology("stt") is STT_MRAM
        assert get_technology("reram") is RERAM

    def test_lookup_is_case_insensitive(self):
        assert get_technology("STT") is STT_MRAM

    def test_lookup_aliases(self):
        assert get_technology("stt-mram") is STT_MRAM
        assert get_technology("sot/she") is SOT_SHE_MRAM
        assert get_technology("rram") is RERAM

    def test_unknown_name_raises(self):
        with pytest.raises(TechnologyError):
            get_technology("pcm")

    def test_register_custom_technology(self):
        custom = STT_MRAM.replace(name="stt-fast", t_switch_ns=0.2)
        register_technology(custom)
        assert get_technology("stt-fast").t_switch_ns == pytest.approx(0.2)
