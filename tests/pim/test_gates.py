"""Tests for the functional in-array gate models (Section II-A, Table I)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GateOperandError
from repro.pim.gates import (
    GATE_PRESETS,
    GateSpec,
    GateType,
    copy_,
    gate_output,
    majority,
    nand,
    nor,
    not_,
    table1_rows,
    thr,
    xor_reference,
    xor_three_step,
    xor_two_step,
)

BITS = st.integers(min_value=0, max_value=1)


class TestNor:
    @pytest.mark.parametrize(
        "inputs,expected",
        [([0], 1), ([1], 0), ([0, 0], 1), ([0, 1], 0), ([1, 0], 0), ([1, 1], 0)],
    )
    def test_truth_table(self, inputs, expected):
        assert nor(inputs) == expected

    def test_wide_nor_only_high_when_all_zero(self):
        assert nor([0] * 8) == 1
        assert nor([0] * 7 + [1]) == 0

    def test_rejects_empty_input(self):
        with pytest.raises(GateOperandError):
            nor([])

    def test_rejects_non_bit(self):
        with pytest.raises(GateOperandError):
            nor([0, 2])

    @given(st.lists(BITS, min_size=1, max_size=8))
    def test_matches_definition(self, bits):
        assert nor(bits) == (1 if not any(bits) else 0)


class TestNandNotCopy:
    @pytest.mark.parametrize(
        "inputs,expected", [([0, 0], 1), ([0, 1], 1), ([1, 0], 1), ([1, 1], 0)]
    )
    def test_nand_truth_table(self, inputs, expected):
        assert nand(inputs) == expected

    def test_not(self):
        assert not_(0) == 1
        assert not_(1) == 0

    def test_copy_is_identity(self):
        assert copy_(0) == 0
        assert copy_(1) == 1

    def test_copy_rejects_non_bit(self):
        with pytest.raises(GateOperandError):
            copy_(3)


class TestThr:
    def test_paper_semantics_three_or_more_zeros(self):
        # "the preset for THR output is logic 0, which only switches to 1 if
        #  three or more of its inputs are 0"
        assert thr([0, 0, 0, 1]) == 1
        assert thr([0, 0, 0, 0]) == 1
        assert thr([0, 0, 1, 1]) == 0
        assert thr([1, 1, 1, 1]) == 0

    def test_configurable_threshold(self):
        assert thr([0, 0, 1], threshold=2) == 1
        assert thr([0, 1, 1], threshold=2) == 0

    def test_threshold_out_of_range(self):
        with pytest.raises(GateOperandError):
            thr([0, 1], threshold=3)

    def test_rejects_empty(self):
        with pytest.raises(GateOperandError):
            thr([])

    @given(st.lists(BITS, min_size=4, max_size=4))
    def test_default_threshold_counts_zeros(self, bits):
        assert thr(bits) == (1 if bits.count(0) >= 3 else 0)


class TestMajority:
    @pytest.mark.parametrize(
        "bits,expected",
        [([0, 0, 0], 0), ([1, 0, 0], 0), ([1, 1, 0], 1), ([1, 1, 1], 1)],
    )
    def test_three_way(self, bits, expected):
        assert majority(bits) == expected

    def test_even_count_rejected(self):
        with pytest.raises(GateOperandError):
            majority([0, 1])

    @given(st.lists(BITS, min_size=5, max_size=5))
    def test_five_way(self, bits):
        assert majority(bits) == (1 if sum(bits) >= 3 else 0)


class TestXorDecompositions:
    def test_table1_matches_paper(self):
        # Table I of the paper, row by row.
        expected = [
            {"in1": 0, "in2": 0, "s1": 1, "s2": 1, "out": 0},
            {"in1": 0, "in2": 1, "s1": 0, "s2": 0, "out": 1},
            {"in1": 1, "in2": 0, "s1": 0, "s2": 0, "out": 1},
            {"in1": 1, "in2": 1, "s1": 0, "s2": 0, "out": 0},
        ]
        assert table1_rows() == expected

    @given(BITS, BITS)
    def test_three_step_equals_xor(self, a, b):
        assert xor_three_step(a, b)[2] == xor_reference(a, b)

    @given(BITS, BITS)
    def test_two_step_equals_xor(self, a, b):
        assert xor_two_step(a, b)[2] == xor_reference(a, b)

    @given(BITS, BITS)
    def test_two_and_three_step_agree(self, a, b):
        assert xor_two_step(a, b)[2] == xor_three_step(a, b)[2]

    def test_intermediate_s2_is_copy_of_s1(self):
        for a in (0, 1):
            for b in (0, 1):
                s1, s2, _ = xor_three_step(a, b)
                assert s1 == s2


class TestGateDispatch:
    def test_dispatch_nor(self):
        assert gate_output("nor", [0, 0]) == 1

    def test_dispatch_thr(self):
        assert gate_output("thr", [0, 0, 0, 1]) == 1

    def test_dispatch_maj(self):
        assert gate_output("maj", [1, 1, 0]) == 1

    def test_dispatch_not_requires_single_input(self):
        with pytest.raises(GateOperandError):
            gate_output("not", [0, 1])

    def test_unknown_gate(self):
        with pytest.raises(GateOperandError):
            gate_output("xnorish", [0, 1])

    def test_presets_are_zero_for_native_gates(self):
        for gate in GateType.NATIVE:
            assert GATE_PRESETS[gate] == 0


class TestGateSpec:
    def test_evaluate_replicates_outputs(self):
        spec = GateSpec(gate=GateType.NOR, n_inputs=2, n_outputs=3)
        assert spec.evaluate([0, 0]) == (1, 1, 1)
        assert spec.evaluate([1, 0]) == (0, 0, 0)

    def test_is_multi_output(self):
        assert GateSpec(GateType.NOR, 2, 2).is_multi_output
        assert not GateSpec(GateType.NOR, 2, 1).is_multi_output

    def test_wrong_arity_rejected(self):
        spec = GateSpec(GateType.NOR, 2)
        with pytest.raises(GateOperandError):
            spec.evaluate([0])

    def test_invalid_construction(self):
        with pytest.raises(GateOperandError):
            GateSpec("flipflop", 2)
        with pytest.raises(GateOperandError):
            GateSpec(GateType.NOR, 0)
        with pytest.raises(GateOperandError):
            GateSpec(GateType.NOR, 2, 0)
