"""Tests for the operation records and the operation trace."""

import pytest

from repro.errors import PimError
from repro.pim.operations import (
    GateOperation,
    OperationKind,
    OperationTrace,
    PresetOperation,
    ReadOperation,
    WriteOperation,
)


class TestRecordValidation:
    def test_gate_operation_requires_outputs(self):
        with pytest.raises(PimError):
            GateOperation(gate="nor", inputs=(0, 1), outputs=())

    def test_gate_operation_rejects_duplicate_outputs(self):
        with pytest.raises(PimError):
            GateOperation(gate="nor", inputs=(0,), outputs=(2, 2))

    def test_gate_operation_rejects_io_overlap(self):
        with pytest.raises(PimError):
            GateOperation(gate="nor", inputs=(0, 1), outputs=(1,))

    def test_gate_operation_counts(self):
        op = GateOperation(gate="nor", inputs=(0, 1), outputs=(2, 3))
        assert op.n_inputs == 2
        assert op.n_outputs == 2

    def test_preset_requires_columns_and_bit_value(self):
        with pytest.raises(PimError):
            PresetOperation(columns=())
        with pytest.raises(PimError):
            PresetOperation(columns=(1,), value=2)

    def test_read_write_require_positive_bits(self):
        with pytest.raises(PimError):
            ReadOperation(n_bits=0)
        with pytest.raises(PimError):
            WriteOperation(n_bits=-1)


class TestOperationTrace:
    def _populated_trace(self):
        trace = OperationTrace()
        trace.append(GateOperation(gate="nor", inputs=(0, 1), outputs=(2,), logic_level=1))
        trace.append(
            GateOperation(gate="nor", inputs=(0, 1), outputs=(3, 4), logic_level=1, is_metadata=True)
        )
        trace.append(GateOperation(gate="thr", inputs=(0, 1, 2, 3), outputs=(5,), logic_level=2))
        trace.append(PresetOperation(columns=(5,), value=0, logic_level=2))
        trace.append(ReadOperation(n_bits=8, logic_level=2))
        trace.append(WriteOperation(n_bits=3, logic_level=2))
        return trace

    def test_len_and_iteration(self):
        trace = self._populated_trace()
        assert len(trace) == 6
        assert len(list(trace)) == 6

    def test_counts_by_kind(self):
        trace = self._populated_trace()
        assert trace.count(OperationKind.GATE) == 3
        assert trace.count(OperationKind.PRESET) == 1
        assert trace.count(OperationKind.READ) == 1
        assert trace.count(OperationKind.WRITE) == 1

    def test_metadata_only_count(self):
        trace = self._populated_trace()
        assert trace.count(OperationKind.GATE, metadata_only=True) == 1

    def test_gate_counts_by_type(self):
        counts = self._populated_trace().gate_counts_by_type()
        assert counts == {"nor": 2, "thr": 1}

    def test_gate_output_bits(self):
        trace = self._populated_trace()
        assert trace.gate_output_bits() == 4
        assert trace.gate_output_bits(metadata_only=True) == 2

    def test_transferred_bits(self):
        trace = self._populated_trace()
        assert trace.transferred_bits(OperationKind.READ) == 8
        assert trace.transferred_bits(OperationKind.WRITE) == 3

    def test_transferred_bits_rejects_gate_kind(self):
        with pytest.raises(PimError):
            self._populated_trace().transferred_bits(OperationKind.GATE)

    def test_operations_by_logic_level(self):
        levels = self._populated_trace().operations_by_logic_level()
        assert levels[1] == 2
        assert levels[2] == 4

    def test_metadata_fraction(self):
        assert self._populated_trace().metadata_fraction() == pytest.approx(1 / 3)

    def test_metadata_fraction_empty(self):
        assert OperationTrace().metadata_fraction() == 0.0

    def test_summary_keys(self):
        summary = self._populated_trace().summary()
        assert summary["total_operations"] == 6
        assert summary["gate_operations"] == 3
        assert summary["read_bits"] == 8

    def test_append_rejects_non_records(self):
        with pytest.raises(PimError):
            OperationTrace().append("not an operation")

    def test_extend(self):
        trace = OperationTrace()
        trace.extend([ReadOperation(n_bits=1), WriteOperation(n_bits=1)])
        assert len(trace) == 2
