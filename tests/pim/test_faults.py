"""Tests for the fault models and injectors (Section II-C error model)."""

import random

import pytest

from repro.errors import PimError
from repro.pim.faults import (
    BurstFaultInjector,
    DeterministicFaultInjector,
    FaultEvent,
    FaultKind,
    FaultLog,
    FaultModel,
    FaultModelSpec,
    NoFaultInjector,
    PhiloxRandom,
    StochasticFaultInjector,
    StuckAtFaultInjector,
    parse_fault_model,
    resolve_rng,
)

SITE = (0, 3, 17)


class TestFaultModel:
    def test_defaults_are_error_free(self):
        assert FaultModel().is_error_free

    def test_metadata_rate_defaults_to_gate_rate(self):
        model = FaultModel(gate_error_rate=0.25)
        assert model.effective_metadata_error_rate == pytest.approx(0.25)

    def test_explicit_metadata_rate(self):
        model = FaultModel(gate_error_rate=0.25, metadata_error_rate=0.1)
        assert model.effective_metadata_error_rate == pytest.approx(0.1)

    @pytest.mark.parametrize("field", ["gate_error_rate", "memory_error_rate", "preset_error_rate"])
    def test_rejects_invalid_probabilities(self, field):
        with pytest.raises(PimError):
            FaultModel(**{field: 1.5})

    def test_nonzero_rate_not_error_free(self):
        assert not FaultModel(gate_error_rate=0.01).is_error_free


class TestFaultLog:
    def test_record_and_count(self):
        log = FaultLog()
        log.record(FaultEvent(FaultKind.LOGIC, SITE, 4, 0, 1))
        log.record(FaultEvent(FaultKind.MEMORY, SITE, None, 1, 0))
        assert log.count() == 2
        assert log.count(FaultKind.LOGIC) == 1
        assert log.count(FaultKind.MEMORY) == 1

    def test_sites_and_clear(self):
        log = FaultLog()
        log.record(FaultEvent(FaultKind.LOGIC, SITE, 0, 0, 1))
        assert log.sites() == [SITE]
        log.clear()
        assert log.count() == 0

    def test_event_rejects_unknown_kind(self):
        with pytest.raises(PimError):
            FaultEvent("cosmic", SITE, 0, 0, 1)


class TestNoFaultInjector:
    def test_never_corrupts(self):
        injector = NoFaultInjector()
        for value in (0, 1):
            assert injector.corrupt_gate_output(value, SITE, 0) == value
            assert injector.corrupt_stored_bit(value, SITE) == value
            assert injector.corrupt_preset(value, SITE, 0) == value
        assert injector.log.count() == 0


class TestStochasticFaultInjector:
    def test_rate_one_always_flips(self):
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=1.0), seed=1)
        assert injector.corrupt_gate_output(0, SITE, 0) == 1
        assert injector.corrupt_gate_output(1, SITE, 1) == 0
        assert injector.log.count() == 2

    def test_rate_zero_never_flips(self):
        injector = StochasticFaultInjector(FaultModel(), seed=1)
        for index in range(100):
            assert injector.corrupt_gate_output(0, SITE, index) == 0
        assert injector.log.count() == 0

    def test_seed_reproducibility(self):
        model = FaultModel(gate_error_rate=0.3)
        a = StochasticFaultInjector(model, seed=42)
        b = StochasticFaultInjector(model, seed=42)
        seq_a = [a.corrupt_gate_output(0, SITE, i) for i in range(50)]
        seq_b = [b.corrupt_gate_output(0, SITE, i) for i in range(50)]
        assert seq_a == seq_b

    def test_empirical_rate_close_to_configured(self):
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=0.2), seed=7)
        flips = sum(injector.corrupt_gate_output(0, SITE, i) for i in range(5000))
        assert 0.15 < flips / 5000 < 0.25

    def test_memory_errors_logged_as_memory(self):
        injector = StochasticFaultInjector(FaultModel(memory_error_rate=1.0), seed=0)
        injector.corrupt_stored_bit(1, SITE)
        assert injector.log.count(FaultKind.MEMORY) == 1

    def test_metadata_errors_logged_as_metadata(self):
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=1.0), seed=0)
        injector.corrupt_gate_output(0, SITE, 0, is_metadata=True)
        assert injector.log.count(FaultKind.METADATA) == 1

    def test_preset_errors(self):
        injector = StochasticFaultInjector(FaultModel(preset_error_rate=1.0), seed=0)
        assert injector.corrupt_preset(0, SITE, 0) == 1
        assert injector.log.count(FaultKind.PRESET) == 1


class TestDeterministicFaultInjector:
    def test_targets_specific_operation(self):
        injector = DeterministicFaultInjector(target_operations={3: 1})
        assert injector.corrupt_gate_output(0, SITE, 2) == 0
        assert injector.corrupt_gate_output(0, SITE, 3) == 1
        assert injector.corrupt_gate_output(0, SITE, 3) == 0  # only one flip
        assert injector.exhausted

    def test_targets_output_position(self):
        injector = DeterministicFaultInjector(target_output_positions={5: 1})
        # First output of operation 5 untouched, second flipped.
        assert injector.corrupt_gate_output(0, SITE, 5) == 0
        assert injector.corrupt_gate_output(0, SITE, 5) == 1
        assert injector.corrupt_gate_output(0, SITE, 5) == 0

    def test_targets_memory_cell(self):
        injector = DeterministicFaultInjector(target_cells=[SITE])
        assert injector.corrupt_stored_bit(1, SITE) == 0
        # The cell is only hit once.
        assert injector.corrupt_stored_bit(0, SITE) == 0
        assert injector.log.count(FaultKind.MEMORY) == 1

    def test_untargeted_operations_clean(self):
        injector = DeterministicFaultInjector(target_operations={10: 1})
        for index in range(9):
            assert injector.corrupt_gate_output(1, SITE, index) == 1
        assert not injector.exhausted


class TestBurstFaultInjector:
    def test_burst_flips_consecutive_outputs(self):
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=1.0), burst_length=3, correlation_window=10, seed=0
        )
        flips = [injector.corrupt_gate_output(0, SITE, i) for i in range(3)]
        assert flips == [1, 1, 1]

    def test_burst_expires_outside_window(self):
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=0.0), burst_length=3, correlation_window=2, seed=0
        )
        # No trigger ever fires with rate 0.
        assert [injector.corrupt_gate_output(0, SITE, i) for i in range(5)] == [0] * 5

    def test_invalid_parameters(self):
        with pytest.raises(PimError):
            BurstFaultInjector(FaultModel(), burst_length=0)
        with pytest.raises(PimError):
            BurstFaultInjector(FaultModel(), correlation_window=0)

    def test_memory_path_still_stochastic(self):
        injector = BurstFaultInjector(FaultModel(memory_error_rate=1.0), seed=0)
        assert injector.corrupt_stored_bit(0, SITE) == 1


class TestStuckAtFaultInjector:
    def test_stuck_at_one(self):
        injector = StuckAtFaultInjector({SITE: 1})
        assert injector.corrupt_gate_output(0, SITE, 0) == 1
        assert injector.corrupt_gate_output(1, SITE, 1) == 1

    def test_stuck_at_zero_on_reads(self):
        injector = StuckAtFaultInjector({SITE: 0})
        assert injector.corrupt_stored_bit(1, SITE) == 0

    def test_other_sites_untouched(self):
        injector = StuckAtFaultInjector({SITE: 1})
        assert injector.corrupt_gate_output(0, (0, 0, 0), 0) == 0

    def test_only_logs_actual_flips(self):
        injector = StuckAtFaultInjector({SITE: 1})
        injector.corrupt_gate_output(1, SITE, 0)  # already 1, no flip
        injector.corrupt_gate_output(0, SITE, 1)  # flips
        assert injector.log.count(FaultKind.STUCK_AT) == 1

    def test_rejects_non_bit_value(self):
        with pytest.raises(PimError):
            StuckAtFaultInjector({SITE: 2})


class TestSeedInjection:
    """Injectors accept explicit seeds or generator instances — never module-global state."""

    def draws(self, injector, n=200):
        return [injector.corrupt_gate_output(0, SITE, i) for i in range(n)]

    def test_resolve_rng_passes_through_generator_instance(self):
        import random

        rng = random.Random(5)
        assert resolve_rng(rng) is rng

    def test_resolve_rng_rejects_non_seeds(self):
        with pytest.raises(PimError):
            resolve_rng("entropy")

    def test_generator_instance_equivalent_to_seed(self):
        import random

        model = FaultModel(gate_error_rate=0.3)
        by_seed = StochasticFaultInjector(model, seed=123)
        by_rng = StochasticFaultInjector(model, seed=random.Random(123))
        assert self.draws(by_seed) == self.draws(by_rng)

    def test_same_seed_same_stream_across_instances(self):
        model = FaultModel(gate_error_rate=0.3)
        assert self.draws(StochasticFaultInjector(model, seed=9)) == self.draws(
            StochasticFaultInjector(model, seed=9)
        )

    def test_injector_does_not_touch_global_random(self):
        import random

        model = FaultModel(gate_error_rate=0.5)
        random.seed(7)
        expected = [random.random() for _ in range(10)]
        random.seed(7)
        self.draws(StochasticFaultInjector(model, seed=1))
        assert [random.random() for _ in range(10)] == expected

    def test_burst_injector_accepts_generator_instance(self):
        import random

        model = FaultModel(gate_error_rate=0.3)
        by_seed = BurstFaultInjector(model, seed=77)
        by_rng = BurstFaultInjector(model, seed=random.Random(77))
        assert self.draws(by_seed) == self.draws(by_rng)


class _CountingRandom(random.Random):
    """A generator that counts its uniform draws (zero-rate early-exit probe)."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.draws = 0

    def random(self):
        self.draws += 1
        return super().random()


class TestScalarInjectorEdgeCases:
    """ISSUE 5 satellite: burst wrap / overlong bursts, stuck preset targets,
    zero-rate early exits."""

    def test_burst_spans_row_end_into_next_operations(self):
        # A burst triggered on the last output of one firing wraps into the
        # following operations' outputs (the "row end" of a multi-output
        # gate), as long as the correlation window allows.
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=1.0), burst_length=3, correlation_window=4, seed=0
        )
        # op 5: one output — triggers and flips; ops 6, 7: burst continues.
        first = injector.corrupt_gate_output(0, SITE, 5)
        second = injector.corrupt_gate_output(0, SITE, 6)
        third = injector.corrupt_gate_output(0, SITE, 7)
        assert (first, second, third) == (1, 1, 1)
        kinds = {event.kind for event in injector.log.events}
        assert kinds == {FaultKind.LOGIC}

    def test_burst_length_exceeding_row_width_stops_at_window(self):
        # burst_length far beyond the outputs available inside the window:
        # remaining flips are silently dropped once the window closes, and
        # later operations draw afresh instead of inheriting stale flips.
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=1.0), burst_length=100, correlation_window=2, seed=3
        )
        assert injector.corrupt_gate_output(0, SITE, 0) == 1  # trigger
        assert injector.corrupt_gate_output(0, SITE, 1) == 1  # in window
        assert injector.corrupt_gate_output(0, SITE, 2) == 1  # window edge
        # op 10 is far outside the window: the stale remaining budget must
        # not flip; with rate 1.0 a *fresh* trigger fires instead, which the
        # log distinguishes (4 events so far, all flips are new bursts).
        assert injector.corrupt_gate_output(0, SITE, 10) == 1
        assert injector.log.count() == 4

    def test_burst_window_expiry_leaves_stale_budget_inert(self):
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=1.0), burst_length=5, correlation_window=1, seed=1
        )
        assert injector.corrupt_gate_output(0, SITE, 0) == 1  # trigger, budget 4
        # Jump past the window with rate forced to zero: the stale budget
        # alone must not flip anything.
        injector.model = FaultModel(gate_error_rate=0.0)
        assert injector.corrupt_gate_output(0, SITE, 7) == 0

    def test_stuck_at_on_a_preset_target_cell(self):
        # Presets bypass the injector (corrupt_preset default), but the gate
        # output written into the same cell re-applies the stuck value: the
        # architectural behaviour "stuck-at re-applies after every write".
        from repro.pim.array import PimArray

        injector = StuckAtFaultInjector({(0, 0, 4): 1})
        array = PimArray(rows=2, cols=8, fault_injector=injector)
        array.preset_cells(0, [4], 0)
        assert array.read_cell(0, 4) == 0  # preset landed raw: not yet stuck
        array.write_cell(0, 1, 1)
        array.write_cell(0, 2, 1)
        array.execute_gate("nor", 0, [1, 2], [4])  # NOR(1,1) = 0 -> stuck 1
        assert array.read_cell(0, 4) == 1
        assert injector.log.count(FaultKind.STUCK_AT) == 1
        # And an architectural read of the cell re-applies (and commits) it.
        array._cells[0, 4] = 0
        assert array.read_row(0, [4]) == [1]
        assert array.read_cell(0, 4) == 1

    def test_zero_rate_stochastic_consumes_no_draws(self):
        rng = _CountingRandom(5)
        injector = StochasticFaultInjector(FaultModel(), seed=rng)
        for op in range(50):
            assert injector.corrupt_gate_output(1, SITE, op) == 1
            assert injector.corrupt_stored_bit(0, SITE) == 0
            assert injector.corrupt_preset(0, SITE, op) == 0
        assert rng.draws == 0
        assert injector.log.count() == 0

    def test_zero_rate_burst_consumes_no_draws(self):
        rng = _CountingRandom(5)
        injector = BurstFaultInjector(FaultModel(), seed=rng)
        for op in range(50):
            assert injector.corrupt_gate_output(0, SITE, op) == 0
            assert injector.corrupt_stored_bit(1, SITE) == 1
        assert rng.draws == 0


class TestFaultModelSpec:
    """The declarative fault-model layer (ISSUE 5 tentpole)."""

    def test_parse_roundtrip_is_canonical(self):
        for text in (
            "stochastic",
            "stochastic:gate=0.001,memory=0.0001",
            "burst:length=3,window=6,rate=0.001",
            "stuck-at:cells=4+17,value=1",
        ):
            spec = parse_fault_model(text)
            assert parse_fault_model(spec.to_string()) == spec
            assert parse_fault_model(spec.to_string()).to_string() == spec.to_string()

    def test_duplicate_and_alias_collisions_rejected(self):
        # 'rate' and 'gate' are one knob; last-wins would silently discard a
        # value the user typed.  Same for plain duplicates and value/polarity.
        with pytest.raises(PimError, match="twice"):
            parse_fault_model("burst:rate=1e-3,gate=1e-2")
        with pytest.raises(PimError, match="twice"):
            parse_fault_model("stochastic:gate=1e-3,gate=1e-4")
        with pytest.raises(PimError, match="twice"):
            parse_fault_model("stuck-at:cells=3,value=1,polarity=0")

    def test_canonical_string_is_lossless_for_rates(self):
        # repr-based formatting: rates survive the parse -> to_string ->
        # parse round trip exactly, even beyond 6 significant digits.
        spec = parse_fault_model("stochastic:gate=0.000123456789")
        assert spec.gate_error_rate == 0.000123456789
        assert parse_fault_model(spec.to_string()).gate_error_rate == 0.000123456789

    def test_aliases_and_ordering_canonicalise(self):
        a = parse_fault_model("stuckat:cells=17+4,polarity=1")
        b = parse_fault_model("stuck-at:value=1,cells=4+17")
        assert a == b
        assert a.to_string() == b.to_string()
        assert parse_fault_model("burst:rate=1e-3").gate_error_rate == pytest.approx(1e-3)

    def test_unknown_kind_and_keys_fail_fast(self):
        with pytest.raises(PimError):
            parse_fault_model("gaussian")
        with pytest.raises(PimError):
            parse_fault_model("burst:burstiness=3")
        with pytest.raises(PimError):
            parse_fault_model("burst:length=abc")
        with pytest.raises(PimError):
            parse_fault_model("")

    def test_kind_inapplicable_keys_rejected_not_dropped(self):
        # A typo'd kind must not silently change the model: burst knobs on a
        # stochastic spec (and vice versa) fail instead of being ignored.
        with pytest.raises(PimError, match="does not apply"):
            parse_fault_model("stochastic:length=5,gate=1e-3")
        with pytest.raises(PimError, match="does not apply"):
            parse_fault_model("stuck-at:cells=3,window=8")
        with pytest.raises(PimError, match="does not apply"):
            parse_fault_model("burst:value=1")
        with pytest.raises(PimError, match="does not apply"):
            parse_fault_model("burst:cells=3+4")
        # And the constructor enforces the same rule for direct API use, so
        # parse(to_string()) == spec holds for every constructible spec.
        with pytest.raises(PimError):
            FaultModelSpec(kind="stochastic", burst_length=5)
        with pytest.raises(PimError):
            FaultModelSpec(kind="stuck-at", stuck_columns=(1,), correlation_window=9)
        with pytest.raises(PimError):
            FaultModelSpec(kind="burst", stuck_polarity=1)

    def test_kind_constraints(self):
        with pytest.raises(PimError):
            FaultModelSpec.stuck_at(())  # needs cells
        with pytest.raises(PimError):
            FaultModelSpec(kind="stuck-at", stuck_columns=(1,), gate_error_rate=0.1)
        with pytest.raises(PimError):
            FaultModelSpec(kind="burst", preset_error_rate=0.1)
        with pytest.raises(PimError):
            FaultModelSpec(kind="stochastic", stuck_columns=(1,))
        with pytest.raises(PimError):
            FaultModelSpec(kind="burst", burst_length=0)
        with pytest.raises(PimError):
            FaultModelSpec(kind="stuck-at", stuck_columns=(3,), stuck_polarity=2)

    def test_resolved_fills_only_unset_rates(self):
        spec = FaultModelSpec.burst(3, 6, gate_error_rate=0.01)
        resolved = spec.resolved(gate_error_rate=0.5, memory_error_rate=0.25)
        assert resolved.gate_error_rate == pytest.approx(0.01)  # explicit wins
        assert resolved.memory_error_rate == pytest.approx(0.25)  # inherited
        stuck = FaultModelSpec.stuck_at((3,))
        assert stuck.resolved(0.5, 0.5) is stuck  # deterministic: no rates

    def test_needs_seeds_and_error_free(self):
        assert FaultModelSpec.stochastic(0.1).needs_seeds
        assert FaultModelSpec.burst(2, 4, gate_error_rate=0.1).needs_seeds
        assert not FaultModelSpec.stuck_at((1,)).needs_seeds
        assert FaultModelSpec.stochastic().is_error_free
        assert not FaultModelSpec.stochastic().needs_seeds

    def test_make_injector_builds_the_matching_scalar_class(self):
        assert isinstance(
            FaultModelSpec.stochastic(0.1).make_injector(seed=1), StochasticFaultInjector
        )
        assert isinstance(
            FaultModelSpec.burst(2, 4, gate_error_rate=0.1).make_injector(seed=1),
            BurstFaultInjector,
        )
        assert isinstance(FaultModelSpec.stuck_at((1,)).make_injector(), StuckAtFaultInjector)
        with pytest.raises(PimError):
            FaultModelSpec.stochastic(0.1).make_injector()  # drawing model, no seed

    def test_philox_random_matches_numpy_stream(self):
        import numpy as np

        generator = np.random.Generator(np.random.Philox(key=99))
        rng = PhiloxRandom(99)
        assert [rng.random() for _ in range(16)] == list(generator.random(16))

    def test_stuck_cells_site_map(self):
        spec = FaultModelSpec.stuck_at((2, 9), 1)
        assert spec.stuck_cells() == {(0, 0, 2): 1, (0, 0, 9): 1}
        assert spec.stuck_cells(array_id=3, row=1) == {(3, 1, 2): 1, (3, 1, 9): 1}
