"""Tests for the fault models and injectors (Section II-C error model)."""

import pytest

from repro.errors import PimError
from repro.pim.faults import (
    BurstFaultInjector,
    DeterministicFaultInjector,
    FaultEvent,
    FaultKind,
    FaultLog,
    FaultModel,
    NoFaultInjector,
    StochasticFaultInjector,
    StuckAtFaultInjector,
    resolve_rng,
)

SITE = (0, 3, 17)


class TestFaultModel:
    def test_defaults_are_error_free(self):
        assert FaultModel().is_error_free

    def test_metadata_rate_defaults_to_gate_rate(self):
        model = FaultModel(gate_error_rate=0.25)
        assert model.effective_metadata_error_rate == pytest.approx(0.25)

    def test_explicit_metadata_rate(self):
        model = FaultModel(gate_error_rate=0.25, metadata_error_rate=0.1)
        assert model.effective_metadata_error_rate == pytest.approx(0.1)

    @pytest.mark.parametrize("field", ["gate_error_rate", "memory_error_rate", "preset_error_rate"])
    def test_rejects_invalid_probabilities(self, field):
        with pytest.raises(PimError):
            FaultModel(**{field: 1.5})

    def test_nonzero_rate_not_error_free(self):
        assert not FaultModel(gate_error_rate=0.01).is_error_free


class TestFaultLog:
    def test_record_and_count(self):
        log = FaultLog()
        log.record(FaultEvent(FaultKind.LOGIC, SITE, 4, 0, 1))
        log.record(FaultEvent(FaultKind.MEMORY, SITE, None, 1, 0))
        assert log.count() == 2
        assert log.count(FaultKind.LOGIC) == 1
        assert log.count(FaultKind.MEMORY) == 1

    def test_sites_and_clear(self):
        log = FaultLog()
        log.record(FaultEvent(FaultKind.LOGIC, SITE, 0, 0, 1))
        assert log.sites() == [SITE]
        log.clear()
        assert log.count() == 0

    def test_event_rejects_unknown_kind(self):
        with pytest.raises(PimError):
            FaultEvent("cosmic", SITE, 0, 0, 1)


class TestNoFaultInjector:
    def test_never_corrupts(self):
        injector = NoFaultInjector()
        for value in (0, 1):
            assert injector.corrupt_gate_output(value, SITE, 0) == value
            assert injector.corrupt_stored_bit(value, SITE) == value
            assert injector.corrupt_preset(value, SITE, 0) == value
        assert injector.log.count() == 0


class TestStochasticFaultInjector:
    def test_rate_one_always_flips(self):
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=1.0), seed=1)
        assert injector.corrupt_gate_output(0, SITE, 0) == 1
        assert injector.corrupt_gate_output(1, SITE, 1) == 0
        assert injector.log.count() == 2

    def test_rate_zero_never_flips(self):
        injector = StochasticFaultInjector(FaultModel(), seed=1)
        for index in range(100):
            assert injector.corrupt_gate_output(0, SITE, index) == 0
        assert injector.log.count() == 0

    def test_seed_reproducibility(self):
        model = FaultModel(gate_error_rate=0.3)
        a = StochasticFaultInjector(model, seed=42)
        b = StochasticFaultInjector(model, seed=42)
        seq_a = [a.corrupt_gate_output(0, SITE, i) for i in range(50)]
        seq_b = [b.corrupt_gate_output(0, SITE, i) for i in range(50)]
        assert seq_a == seq_b

    def test_empirical_rate_close_to_configured(self):
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=0.2), seed=7)
        flips = sum(injector.corrupt_gate_output(0, SITE, i) for i in range(5000))
        assert 0.15 < flips / 5000 < 0.25

    def test_memory_errors_logged_as_memory(self):
        injector = StochasticFaultInjector(FaultModel(memory_error_rate=1.0), seed=0)
        injector.corrupt_stored_bit(1, SITE)
        assert injector.log.count(FaultKind.MEMORY) == 1

    def test_metadata_errors_logged_as_metadata(self):
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=1.0), seed=0)
        injector.corrupt_gate_output(0, SITE, 0, is_metadata=True)
        assert injector.log.count(FaultKind.METADATA) == 1

    def test_preset_errors(self):
        injector = StochasticFaultInjector(FaultModel(preset_error_rate=1.0), seed=0)
        assert injector.corrupt_preset(0, SITE, 0) == 1
        assert injector.log.count(FaultKind.PRESET) == 1


class TestDeterministicFaultInjector:
    def test_targets_specific_operation(self):
        injector = DeterministicFaultInjector(target_operations={3: 1})
        assert injector.corrupt_gate_output(0, SITE, 2) == 0
        assert injector.corrupt_gate_output(0, SITE, 3) == 1
        assert injector.corrupt_gate_output(0, SITE, 3) == 0  # only one flip
        assert injector.exhausted

    def test_targets_output_position(self):
        injector = DeterministicFaultInjector(target_output_positions={5: 1})
        # First output of operation 5 untouched, second flipped.
        assert injector.corrupt_gate_output(0, SITE, 5) == 0
        assert injector.corrupt_gate_output(0, SITE, 5) == 1
        assert injector.corrupt_gate_output(0, SITE, 5) == 0

    def test_targets_memory_cell(self):
        injector = DeterministicFaultInjector(target_cells=[SITE])
        assert injector.corrupt_stored_bit(1, SITE) == 0
        # The cell is only hit once.
        assert injector.corrupt_stored_bit(0, SITE) == 0
        assert injector.log.count(FaultKind.MEMORY) == 1

    def test_untargeted_operations_clean(self):
        injector = DeterministicFaultInjector(target_operations={10: 1})
        for index in range(9):
            assert injector.corrupt_gate_output(1, SITE, index) == 1
        assert not injector.exhausted


class TestBurstFaultInjector:
    def test_burst_flips_consecutive_outputs(self):
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=1.0), burst_length=3, correlation_window=10, seed=0
        )
        flips = [injector.corrupt_gate_output(0, SITE, i) for i in range(3)]
        assert flips == [1, 1, 1]

    def test_burst_expires_outside_window(self):
        injector = BurstFaultInjector(
            FaultModel(gate_error_rate=0.0), burst_length=3, correlation_window=2, seed=0
        )
        # No trigger ever fires with rate 0.
        assert [injector.corrupt_gate_output(0, SITE, i) for i in range(5)] == [0] * 5

    def test_invalid_parameters(self):
        with pytest.raises(PimError):
            BurstFaultInjector(FaultModel(), burst_length=0)
        with pytest.raises(PimError):
            BurstFaultInjector(FaultModel(), correlation_window=0)

    def test_memory_path_still_stochastic(self):
        injector = BurstFaultInjector(FaultModel(memory_error_rate=1.0), seed=0)
        assert injector.corrupt_stored_bit(0, SITE) == 1


class TestStuckAtFaultInjector:
    def test_stuck_at_one(self):
        injector = StuckAtFaultInjector({SITE: 1})
        assert injector.corrupt_gate_output(0, SITE, 0) == 1
        assert injector.corrupt_gate_output(1, SITE, 1) == 1

    def test_stuck_at_zero_on_reads(self):
        injector = StuckAtFaultInjector({SITE: 0})
        assert injector.corrupt_stored_bit(1, SITE) == 0

    def test_other_sites_untouched(self):
        injector = StuckAtFaultInjector({SITE: 1})
        assert injector.corrupt_gate_output(0, (0, 0, 0), 0) == 0

    def test_only_logs_actual_flips(self):
        injector = StuckAtFaultInjector({SITE: 1})
        injector.corrupt_gate_output(1, SITE, 0)  # already 1, no flip
        injector.corrupt_gate_output(0, SITE, 1)  # flips
        assert injector.log.count(FaultKind.STUCK_AT) == 1

    def test_rejects_non_bit_value(self):
        with pytest.raises(PimError):
            StuckAtFaultInjector({SITE: 2})


class TestSeedInjection:
    """Injectors accept explicit seeds or generator instances — never module-global state."""

    def draws(self, injector, n=200):
        return [injector.corrupt_gate_output(0, SITE, i) for i in range(n)]

    def test_resolve_rng_passes_through_generator_instance(self):
        import random

        rng = random.Random(5)
        assert resolve_rng(rng) is rng

    def test_resolve_rng_rejects_non_seeds(self):
        with pytest.raises(PimError):
            resolve_rng("entropy")

    def test_generator_instance_equivalent_to_seed(self):
        import random

        model = FaultModel(gate_error_rate=0.3)
        by_seed = StochasticFaultInjector(model, seed=123)
        by_rng = StochasticFaultInjector(model, seed=random.Random(123))
        assert self.draws(by_seed) == self.draws(by_rng)

    def test_same_seed_same_stream_across_instances(self):
        model = FaultModel(gate_error_rate=0.3)
        assert self.draws(StochasticFaultInjector(model, seed=9)) == self.draws(
            StochasticFaultInjector(model, seed=9)
        )

    def test_injector_does_not_touch_global_random(self):
        import random

        model = FaultModel(gate_error_rate=0.5)
        random.seed(7)
        expected = [random.random() for _ in range(10)]
        random.seed(7)
        self.draws(StochasticFaultInjector(model, seed=1))
        assert [random.random() for _ in range(10)] == expected

    def test_burst_injector_accepts_generator_instance(self):
        import random

        model = FaultModel(gate_error_rate=0.3)
        by_seed = BurstFaultInjector(model, seed=77)
        by_rng = BurstFaultInjector(model, seed=random.Random(77))
        assert self.draws(by_seed) == self.draws(by_rng)
