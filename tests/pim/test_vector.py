"""Exhaustive equivalence of the vectorized gate semantics vs the scalar
model: every native GateType, every feasible input width, every input
combination, both the truth-table path and the wide-gate fallback."""

import itertools

import numpy as np
import pytest

from repro.errors import GateOperandError
from repro.pim.gates import GateType, gate_output, thr
from repro.pim.vector import (
    TABLE_MAX_INPUTS,
    apply_deterministic_flips,
    truth_table,
    vector_gate_output,
)
from repro.pim.vector import _direct_eval


def all_combos(n):
    return np.array(list(itertools.product((0, 1), repeat=n)), dtype=np.uint8)


def valid_widths(gate):
    if gate in (GateType.NOT, GateType.COPY):
        return [1]
    if gate == GateType.MAJ:
        return [1, 3, 5]
    if gate == GateType.THR:
        # The scalar default threshold is 3, which needs >= 3 inputs;
        # narrower THR instances are covered with explicit thresholds below.
        return [3, 4, 5]
    return [1, 2, 3, 4, 5]


class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("gate", GateType.NATIVE)
    def test_matches_gate_output_on_every_combination(self, gate):
        for n in valid_widths(gate):
            combos = all_combos(n)
            batched = vector_gate_output(gate, combos)
            for row, bits in enumerate(combos):
                assert batched[row] == gate_output(gate, list(int(b) for b in bits)), (
                    gate, n, list(bits),
                )

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_thr_matches_for_every_threshold(self, n):
        combos = all_combos(n)
        for threshold in range(1, n + 1):
            batched = vector_gate_output(GateType.THR, combos, threshold=threshold)
            for row, bits in enumerate(combos):
                assert batched[row] == thr(list(int(b) for b in bits), threshold=threshold)

    def test_thr_default_threshold_is_three(self):
        # Mirrors PimArray.execute_gate / Netlist.evaluate: THR with no
        # explicit threshold means the paper's 4-input threshold-3 gate.
        combos = all_combos(4)
        assert np.array_equal(
            vector_gate_output(GateType.THR, combos),
            vector_gate_output(GateType.THR, combos, threshold=3),
        )

    @pytest.mark.parametrize("gate", GateType.NATIVE)
    def test_table_path_equals_direct_fallback(self, gate):
        for n in valid_widths(gate):
            combos = all_combos(n)
            threshold = 3 if gate == GateType.THR and n >= 3 else (n if gate == GateType.THR else None)
            assert np.array_equal(
                truth_table(gate, n, threshold)[
                    combos.astype(np.int64) @ (1 << np.arange(n, dtype=np.int64))
                ],
                _direct_eval(gate, combos, threshold),
            )


class TestWideGates:
    def test_wide_nor_uses_fallback(self):
        n = TABLE_MAX_INPUTS + 3
        matrix = np.zeros((4, n), dtype=np.uint8)
        matrix[1, 0] = 1
        matrix[2] = 1
        assert list(vector_gate_output(GateType.NOR, matrix)) == [1, 0, 0, 1]

    def test_truth_table_refuses_wide_gates(self):
        with pytest.raises(GateOperandError):
            truth_table(GateType.NOR, TABLE_MAX_INPUTS + 1)


class TestValidation:
    def test_not_rejects_multiple_inputs(self):
        with pytest.raises(GateOperandError):
            vector_gate_output(GateType.NOT, np.zeros((2, 2), dtype=np.uint8))

    def test_unknown_gate_rejected(self):
        with pytest.raises(GateOperandError):
            truth_table("xor", 2)

    def test_one_dimensional_input_treated_as_single_column(self):
        assert list(vector_gate_output(GateType.NOT, np.array([0, 1, 0], dtype=np.uint8))) == [1, 0, 1]

    def test_table_is_read_only_and_cached(self):
        table = truth_table(GateType.NOR, 2)
        assert table is truth_table(GateType.NOR, 2)
        with pytest.raises(ValueError):
            table[0] = 0


class TestDeterministicFlips:
    def test_flips_exactly_the_requested_cells(self):
        outputs = np.zeros((4, 3), dtype=np.uint8)
        flipped = apply_deterministic_flips(
            outputs, np.array([0, 2]), np.array([1, 2])
        )
        assert list(flipped) == [0, 2]
        assert outputs[0, 1] == 1 and outputs[2, 2] == 1
        assert outputs.sum() == 2

    def test_out_of_range_positions_inject_nothing(self):
        # Matches DeterministicFaultInjector: a position the output counter
        # cannot reach never fires, and a negative index must not wrap.
        outputs = np.ones((3, 2), dtype=np.uint8)
        flipped = apply_deterministic_flips(
            outputs, np.array([0, 1, 2]), np.array([-1, 5, 0])
        )
        assert list(flipped) == [2]
        assert outputs.sum() == 5

    def test_double_flip_restores_the_bit(self):
        outputs = np.zeros((1, 1), dtype=np.uint8)
        apply_deterministic_flips(outputs, np.array([0]), np.array([0]))
        apply_deterministic_flips(outputs, np.array([0]), np.array([0]))
        assert outputs[0, 0] == 0
