"""Tests for the array fleet controller."""

import pytest

from repro.errors import PimError, SchedulingError
from repro.pim.controller import MAX_ARRAYS, ArrayFleet
from repro.pim.technology import RERAM


class TestConstruction:
    def test_default_fleet(self):
        fleet = ArrayFleet(n_arrays=2, rows=16, cols=32)
        assert len(fleet) == 2
        assert fleet.rows == 16
        assert fleet.cols == 32

    def test_budget_matches_paper_default(self):
        assert MAX_ARRAYS == 16

    def test_too_many_arrays_rejected(self):
        with pytest.raises(SchedulingError):
            ArrayFleet(n_arrays=MAX_ARRAYS + 1, rows=4, cols=4)

    def test_zero_arrays_rejected(self):
        with pytest.raises(PimError):
            ArrayFleet(n_arrays=0)

    def test_arrays_share_trace_and_injector(self):
        fleet = ArrayFleet(n_arrays=3, rows=4, cols=8)
        assert all(a.trace is fleet.trace for a in fleet)
        assert all(a.fault_injector is fleet.fault_injector for a in fleet)

    def test_technology_propagates(self):
        fleet = ArrayFleet(n_arrays=1, rows=4, cols=8, technology=RERAM)
        assert fleet[0].technology is RERAM


class TestCapacity:
    def test_total_cells(self):
        fleet = ArrayFleet(n_arrays=4, rows=16, cols=32)
        assert fleet.total_cells == 4 * 16 * 32

    def test_total_rows(self):
        fleet = ArrayFleet(n_arrays=4, rows=16, cols=32)
        assert fleet.total_rows == 64


class TestRowPlacement:
    def test_load_rows_round_robin(self):
        fleet = ArrayFleet(n_arrays=2, rows=4, cols=8)
        fleet.load_rows([[1, 0], [0, 1], [1, 1]])
        assert fleet[0].dump_row(0, [0, 1]) == [1, 0]
        assert fleet[1].dump_row(0, [0, 1]) == [0, 1]
        assert fleet[0].dump_row(1, [0, 1]) == [1, 1]

    def test_load_rows_capacity_exceeded(self):
        fleet = ArrayFleet(n_arrays=1, rows=2, cols=8)
        with pytest.raises(SchedulingError):
            fleet.load_rows([[1]] * 3)

    def test_locate_row(self):
        fleet = ArrayFleet(n_arrays=2, rows=4, cols=8)
        array, row = fleet.locate_row(3)
        assert array is fleet[1]
        assert row == 1

    def test_locate_row_out_of_range(self):
        fleet = ArrayFleet(n_arrays=1, rows=2, cols=8)
        with pytest.raises(PimError):
            fleet.locate_row(5)

    def test_for_each_row_executes_gates_everywhere(self):
        fleet = ArrayFleet(n_arrays=2, rows=2, cols=8)
        fleet.load_rows([[0, 0]] * 4)

        def fire(array, row):
            array.execute_gate("nor", row, [0, 1], [2])

        fleet.for_each_row(4, fire)
        assert fleet.trace.count("gate") == 4
        for logical in range(4):
            array, row = fleet.locate_row(logical)
            assert array.read_cell(row, 2) == 1

    def test_for_each_row_over_capacity(self):
        fleet = ArrayFleet(n_arrays=1, rows=2, cols=8)
        with pytest.raises(SchedulingError):
            fleet.for_each_row(5, lambda a, r: None)


class TestMaintenance:
    def test_repartition_all(self):
        fleet = ArrayFleet(n_arrays=2, rows=4, cols=32)
        fleet.repartition(4)
        assert all(a.layout.n_partitions == 4 for a in fleet)

    def test_summary(self):
        fleet = ArrayFleet(n_arrays=2, rows=4, cols=8)
        summary = fleet.summary()
        assert summary["n_arrays"] == 2
        assert summary["total_cells"] == 64
        assert summary["faults_injected"] == 0

    def test_clear(self):
        fleet = ArrayFleet(n_arrays=1, rows=2, cols=4)
        fleet[0].write_cell(0, 0, 1)
        fleet.clear()
        assert fleet[0].occupancy() == 0.0
