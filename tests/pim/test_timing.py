"""Tests for the step-level timing model (Fig. 4 execution model)."""

import pytest

from repro.errors import PimError
from repro.pim.operations import (
    GateOperation,
    OperationTrace,
    PresetOperation,
    ReadOperation,
    WriteOperation,
)
from repro.pim.peripheral import PeripheralModel
from repro.pim.technology import RERAM, STT_MRAM
from repro.pim.timing import LevelTimingStats, TimingBreakdown, TimingModel


@pytest.fixture
def model():
    return TimingModel(STT_MRAM, PeripheralModel(row_access_latency_ns=2.0), checker_bus_bits=256)


class TestPrimitives:
    def test_gate_step_uses_switching_time(self, model):
        assert model.gate_step_ns() == pytest.approx(1.0)

    def test_reram_gate_step(self):
        assert TimingModel(RERAM).gate_step_ns() == pytest.approx(1.3)

    def test_access_latency_rounds_up_to_bus_width(self, model):
        assert model.access_ns(1) == pytest.approx(2.0)
        assert model.access_ns(256) == pytest.approx(2.0)
        assert model.access_ns(257) == pytest.approx(4.0)

    def test_access_zero_bits_is_free(self, model):
        assert model.access_ns(0) == 0.0

    def test_negative_bits_rejected(self, model):
        with pytest.raises(PimError):
            model.access_ns(-1)

    def test_invalid_bus_width(self):
        with pytest.raises(PimError):
            TimingModel(STT_MRAM, checker_bus_bits=0)


class TestTraceLatency:
    def test_gate_and_preset_counted_as_steps(self, model):
        trace = OperationTrace()
        trace.append(GateOperation(gate="nor", inputs=(0,), outputs=(1,)))
        trace.append(PresetOperation(columns=(1,), value=0))
        breakdown = model.trace_latency_ns(trace)
        assert breakdown.compute_ns == pytest.approx(2.0)

    def test_metadata_attributed_separately(self, model):
        trace = OperationTrace()
        trace.append(GateOperation(gate="nor", inputs=(0,), outputs=(1,)))
        trace.append(GateOperation(gate="nor", inputs=(0,), outputs=(2,), is_metadata=True))
        breakdown = model.trace_latency_ns(trace)
        assert breakdown.compute_ns == pytest.approx(1.0)
        assert breakdown.metadata_ns == pytest.approx(1.0)

    def test_transfers_counted(self, model):
        trace = OperationTrace()
        trace.append(ReadOperation(n_bits=300))
        trace.append(WriteOperation(n_bits=10))
        breakdown = model.trace_latency_ns(trace)
        assert breakdown.checker_transfer_ns == pytest.approx(4.0 + 2.0)

    def test_total_is_sum_of_components(self, model):
        breakdown = TimingBreakdown(1.0, 2.0, 3.0, 4.0)
        assert breakdown.total_ns == pytest.approx(10.0)


class TestPipelinedLatency:
    def test_single_row_exposes_all_transfers(self, model):
        levels = [LevelTimingStats(compute_steps=10, checker_read_bits=256)]
        breakdown = model.pipelined_latency_ns(levels, active_rows=1)
        assert breakdown.checker_transfer_ns == pytest.approx(2.0)

    def test_many_rows_mask_transfers(self, model):
        levels = [LevelTimingStats(compute_steps=10, checker_read_bits=256)]
        breakdown = model.pipelined_latency_ns(levels, active_rows=8)
        assert breakdown.checker_transfer_ns == 0.0

    def test_masking_partial_when_cover_is_small(self, model):
        # transfer = 4 ns (two accesses), cover = (2-1) * 1 step * 1 ns = 1 ns
        levels = [LevelTimingStats(compute_steps=1, checker_read_bits=512)]
        breakdown = model.pipelined_latency_ns(levels, active_rows=2)
        assert breakdown.checker_transfer_ns == pytest.approx(3.0)

    def test_masking_can_be_disabled(self, model):
        levels = [LevelTimingStats(compute_steps=10, checker_read_bits=256)]
        breakdown = model.pipelined_latency_ns(
            levels, active_rows=8, overlap_checker_transfers=False
        )
        assert breakdown.checker_transfer_ns == pytest.approx(2.0)

    def test_metadata_and_reclaim_steps_counted(self, model):
        levels = [LevelTimingStats(compute_steps=5, metadata_steps=3, reclaim_steps=2)]
        breakdown = model.pipelined_latency_ns(levels, active_rows=4)
        assert breakdown.compute_ns == pytest.approx(5.0)
        assert breakdown.metadata_ns == pytest.approx(3.0)
        assert breakdown.reclaim_ns == pytest.approx(2.0)

    def test_invalid_active_rows(self, model):
        with pytest.raises(PimError):
            model.pipelined_latency_ns([], active_rows=0)

    def test_level_stats_reject_negative_counts(self):
        with pytest.raises(PimError):
            LevelTimingStats(compute_steps=-1)


class TestOverhead:
    def test_overhead_percent(self, model):
        baseline = TimingBreakdown(100.0, 0.0, 0.0, 0.0)
        protected = TimingBreakdown(100.0, 20.0, 5.0, 0.0)
        assert model.overhead_percent(protected, baseline) == pytest.approx(25.0)

    def test_overhead_requires_positive_baseline(self, model):
        with pytest.raises(PimError):
            TimingBreakdown(1.0, 0.0, 0.0, 0.0).overhead_vs(TimingBreakdown(0.0, 0.0, 0.0, 0.0))
