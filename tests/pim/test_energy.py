"""Tests for the energy model."""

import pytest

from repro.errors import PimError
from repro.pim.energy import EnergyBreakdown, EnergyModel, LevelEnergyStats
from repro.pim.operations import GateOperation, OperationTrace, PresetOperation, ReadOperation, WriteOperation
from repro.pim.peripheral import PeripheralModel
from repro.pim.technology import RERAM, SOT_SHE_MRAM, STT_MRAM


@pytest.fixture
def model():
    peripheral = PeripheralModel(
        row_activation_energy_fj=100.0,
        sense_energy_per_bit_fj=1.0,
        write_driver_energy_per_bit_fj=1.0,
        gate_drive_energy_fj=2.0,
    )
    return EnergyModel(STT_MRAM, peripheral)


class TestPrimitives:
    def test_gate_energy_includes_peripheral_drive(self, model):
        assert model.gate_energy_fj("nor") == pytest.approx(10.5 + 2.0)

    def test_multi_output_gate_energy(self, model):
        assert model.gate_energy_fj("nor", 3) == pytest.approx(10.5 + 2 * 1.03 + 2.0)

    def test_preset_energy(self, model):
        assert model.preset_energy_fj(4) == pytest.approx(4 * 1.03)

    def test_read_energy(self, model):
        expected = 100.0 + 8 * 1.0 + 8 * STT_MRAM.read_energy_fj
        assert model.read_energy_fj(8) == pytest.approx(expected)

    def test_write_energy(self, model):
        expected = 100.0 + 8 * 1.0 + 8 * 1.03
        assert model.write_energy_fj(8) == pytest.approx(expected)

    def test_zero_bit_transfers_are_free(self, model):
        assert model.read_energy_fj(0) == 0.0
        assert model.write_energy_fj(0) == 0.0

    def test_negative_presets_rejected(self, model):
        with pytest.raises(PimError):
            model.preset_energy_fj(-1)


class TestBreakdownArithmetic:
    def test_total(self):
        breakdown = EnergyBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert breakdown.total_fj == pytest.approx(15.0)

    def test_addition(self):
        total = EnergyBreakdown(compute_fj=1.0) + EnergyBreakdown(metadata_fj=2.0)
        assert total.compute_fj == pytest.approx(1.0)
        assert total.metadata_fj == pytest.approx(2.0)

    def test_scaling(self):
        scaled = EnergyBreakdown(compute_fj=2.0, transfer_fj=4.0).scaled(0.5)
        assert scaled.compute_fj == pytest.approx(1.0)
        assert scaled.transfer_fj == pytest.approx(2.0)

    def test_scaling_rejects_negative(self):
        with pytest.raises(PimError):
            EnergyBreakdown().scaled(-1.0)

    def test_overhead_vs(self):
        baseline = EnergyBreakdown(compute_fj=10.0)
        protected = EnergyBreakdown(compute_fj=10.0, metadata_fj=5.0)
        assert protected.overhead_vs(baseline) == pytest.approx(0.5)

    def test_overhead_requires_positive_baseline(self):
        with pytest.raises(PimError):
            EnergyBreakdown(compute_fj=1.0).overhead_vs(EnergyBreakdown())


class TestTraceEnergy:
    def test_gate_and_metadata_split(self, model):
        trace = OperationTrace()
        trace.append(GateOperation(gate="nor", inputs=(0,), outputs=(1,)))
        trace.append(GateOperation(gate="thr", inputs=(0, 1, 2, 3), outputs=(4,), is_metadata=True))
        breakdown = model.trace_energy_fj(trace)
        assert breakdown.compute_fj == pytest.approx(12.5)
        assert breakdown.metadata_fj == pytest.approx(11.2 + 2.0)

    def test_presets_and_transfers(self, model):
        trace = OperationTrace()
        trace.append(PresetOperation(columns=(0, 1), value=0))
        trace.append(ReadOperation(n_bits=4))
        trace.append(WriteOperation(n_bits=4))
        breakdown = model.trace_energy_fj(trace)
        assert breakdown.compute_fj == pytest.approx(2 * 1.03)
        assert breakdown.transfer_fj > 200.0


class TestLevelEnergy:
    def test_level_energy_components(self, model):
        level = LevelEnergyStats(
            compute_gates=4,
            compute_gate_outputs=4,
            compute_thr_gates=1,
            metadata_gates=2,
            metadata_gate_outputs=4,
            metadata_thr_gates=1,
            preset_bits=4,
            metadata_preset_bits=4,
            checker_read_bits=16,
        )
        breakdown = model.level_energy_fj(level, checker_energy_fj=7.0)
        # compute: 3 NOR + 1 THR + peripheral + presets
        expected_compute = 3 * 10.5 + 11.2 + 4 * 2.0 + 4 * 1.03
        assert breakdown.compute_fj == pytest.approx(expected_compute)
        # metadata: 1 NOR-like + 1 THR + 2 extra outputs + peripheral + presets
        expected_metadata = 1 * 10.5 + 11.2 + 2 * 1.03 + 2 * 2.0 + 4 * 1.03
        assert breakdown.metadata_fj == pytest.approx(expected_metadata)
        assert breakdown.checker_fj == pytest.approx(7.0)
        assert breakdown.transfer_fj > 0.0

    def test_levels_energy_sums(self, model):
        level = LevelEnergyStats(compute_gates=2, compute_gate_outputs=2, preset_bits=2)
        total = model.levels_energy_fj([level, level])
        single = model.level_energy_fj(level)
        assert total.total_fj == pytest.approx(2 * single.total_fj)

    def test_reclaim_bits_accounted(self, model):
        level = LevelEnergyStats(
            compute_gates=1, compute_gate_outputs=1, reclaim_write_bits=64
        )
        breakdown = model.level_energy_fj(level)
        assert breakdown.reclaim_fj > 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(PimError):
            LevelEnergyStats(compute_gates=-1, compute_gate_outputs=0)


class TestTechnologySensitivity:
    def test_sot_gates_cheapest(self):
        level = LevelEnergyStats(compute_gates=10, compute_gate_outputs=10, preset_bits=10)
        energies = {
            tech.name: EnergyModel(tech).level_energy_fj(level).compute_fj
            for tech in (STT_MRAM, SOT_SHE_MRAM, RERAM)
        }
        assert energies["sot"] < energies["stt"] < energies["reram"]

    def test_overhead_percent_helper(self, model):
        baseline = EnergyBreakdown(compute_fj=100.0)
        protected = EnergyBreakdown(compute_fj=100.0, metadata_fj=30.0)
        assert model.overhead_percent(protected, baseline) == pytest.approx(30.0)
