"""Tests for the device-level reliability models."""

import pytest

from repro.errors import PimError
from repro.pim.reliability import (
    ReliabilityProfile,
    fault_model_for,
    gate_error_rate_for,
    gate_error_rate_from_noise_margin,
    mtj_retention_failure_rate,
    reram_state_confusion_rate,
    standard_normal_cdf,
    write_error_rate,
)
from repro.pim.technology import RERAM, SOT_SHE_MRAM, STT_MRAM


class TestNormalCdf:
    def test_symmetry(self):
        assert standard_normal_cdf(0.0) == pytest.approx(0.5)
        assert standard_normal_cdf(1.0) + standard_normal_cdf(-1.0) == pytest.approx(1.0)

    def test_known_value(self):
        assert standard_normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)


class TestRetention:
    def test_higher_stability_means_lower_failure_rate(self):
        assert mtj_retention_failure_rate(60.0) < mtj_retention_failure_rate(40.0)

    def test_longer_time_means_higher_failure_rate(self):
        assert mtj_retention_failure_rate(45.0, retention_time_s=10.0) > mtj_retention_failure_rate(
            45.0, retention_time_s=0.1
        )

    def test_storage_class_stability_is_reliable(self):
        # Delta ~ 60 over a millisecond scrub interval: essentially no flips.
        assert mtj_retention_failure_rate(60.0, retention_time_s=1e-3) < 1e-12

    def test_probability_bounds(self):
        assert 0.0 <= mtj_retention_failure_rate(30.0, retention_time_s=100.0) <= 1.0

    def test_invalid_parameters(self):
        with pytest.raises(PimError):
            mtj_retention_failure_rate(0.0)
        with pytest.raises(PimError):
            mtj_retention_failure_rate(40.0, retention_time_s=-1.0)


class TestWriteErrors:
    def test_more_overdrive_means_fewer_errors(self):
        assert write_error_rate(1.5) < write_error_rate(1.1)

    def test_no_overdrive_is_coin_flip(self):
        assert write_error_rate(1.0) == pytest.approx(0.5)

    def test_tighter_distribution_helps(self):
        assert write_error_rate(1.2, sigma=0.02) < write_error_rate(1.2, sigma=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(PimError):
            write_error_rate(0.0)
        with pytest.raises(PimError):
            write_error_rate(1.2, sigma=0.0)


class TestGateErrorRates:
    def test_wider_margin_means_lower_rate(self):
        assert gate_error_rate_from_noise_margin(0.40) < gate_error_rate_from_noise_margin(0.10)

    def test_five_percent_margin_is_unusable(self):
        # The Appendix's 5 % minimum margin is a feasibility floor, not a
        # comfortable operating point.
        assert gate_error_rate_from_noise_margin(0.05) > 0.1

    def test_rate_bounded_by_two(self):
        assert 0.0 <= gate_error_rate_from_noise_margin(0.0) <= 1.0 + 1.0

    def test_more_outputs_increase_error_rate_for_series_stacks(self):
        from repro.pim.electrical import OutputTopology

        single = gate_error_rate_for(STT_MRAM, n_outputs=1, topology=OutputTopology.SERIES)
        many = gate_error_rate_for(STT_MRAM, n_outputs=8, topology=OutputTopology.SERIES)
        assert many > single

    def test_parallel_multi_output_remains_reliable(self):
        rate = gate_error_rate_for(STT_MRAM, n_outputs=4)
        assert rate < 1e-6

    def test_reram_supported(self):
        assert 0.0 <= gate_error_rate_for(RERAM, n_outputs=2) <= 1.0

    def test_invalid_sigma(self):
        with pytest.raises(PimError):
            gate_error_rate_from_noise_margin(0.2, parameter_sigma=0.0)


class TestReramStateConfusion:
    def test_wide_window_is_reliable(self):
        assert reram_state_confusion_rate(RERAM) < 1e-6

    def test_more_variation_means_more_confusion(self):
        assert reram_state_confusion_rate(RERAM, log_sigma=1.0) > reram_state_confusion_rate(
            RERAM, log_sigma=0.3
        )

    def test_invalid_sigma(self):
        with pytest.raises(PimError):
            reram_state_confusion_rate(RERAM, log_sigma=0.0)


class TestFaultModelDerivation:
    @pytest.mark.parametrize("technology", [STT_MRAM, SOT_SHE_MRAM, RERAM])
    def test_profile_produces_valid_fault_model(self, technology):
        profile = fault_model_for(technology)
        assert isinstance(profile, ReliabilityProfile)
        model = profile.as_fault_model()
        assert 0.0 <= model.gate_error_rate <= 1.0
        assert 0.0 <= model.memory_error_rate <= 1.0
        assert 0.0 <= model.preset_error_rate <= 1.0

    def test_mature_technology_is_memory_class_reliable(self):
        # The paper's premise: once mature, gate error rates approach those of
        # conventional memory — our derived rates for the nominal parameters
        # are indeed tiny (well below one error per ten thousand gates).
        profile = fault_model_for(STT_MRAM, n_outputs=2)
        assert profile.gate_error_rate < 1e-4

    def test_degraded_parameters_raise_rates(self):
        nominal = fault_model_for(STT_MRAM, parameter_sigma=0.03)
        degraded = fault_model_for(STT_MRAM, parameter_sigma=0.12)
        assert degraded.gate_error_rate > nominal.gate_error_rate
