"""Tests for the electrical characterisation of multi-output gates (Appendix, Fig. 9)."""

import pytest

from repro.errors import BiasVoltageError, TechnologyError
from repro.pim.electrical import (
    MINIMUM_NOISE_MARGIN_PERCENT,
    BiasWindow,
    OutputTopology,
    bias_voltage_curve,
    dummy_inputs_for,
    max_feasible_outputs,
    mram_bias_window,
    mram_nor_window_with_dummies,
    mram_thr_window,
    noise_margin_curve,
    noise_margin_percent,
    parallel_resistance,
    reram_nor_window,
    reram_thr_window,
)
from repro.pim.technology import RERAM, SOT_SHE_MRAM, STT_MRAM


class TestParallelResistance:
    def test_two_equal_resistors(self):
        assert parallel_resistance([10.0, 10.0]) == pytest.approx(5.0)

    def test_single_resistor(self):
        assert parallel_resistance([7.0]) == pytest.approx(7.0)

    def test_result_below_smallest(self):
        assert parallel_resistance([5.0, 100.0]) < 5.0

    def test_rejects_empty(self):
        with pytest.raises(BiasVoltageError):
            parallel_resistance([])

    def test_rejects_non_positive(self):
        with pytest.raises(BiasVoltageError):
            parallel_resistance([1.0, 0.0])


class TestBiasWindow:
    def test_feasible_window(self):
        window = BiasWindow(0.5, 1.0)
        assert window.is_feasible
        assert window.width == pytest.approx(0.5)
        assert window.center == pytest.approx(0.75)
        assert window.contains(0.75)
        assert not window.contains(1.5)

    def test_infeasible_window(self):
        assert not BiasWindow(1.0, 0.5).is_feasible

    def test_overlap(self):
        a = BiasWindow(0.4, 1.0)
        b = BiasWindow(0.8, 1.4)
        overlap = a.overlap(b)
        assert overlap.v_low == pytest.approx(0.8)
        assert overlap.v_high == pytest.approx(1.0)


class TestMramWindows:
    def test_single_output_window_feasible(self):
        window = mram_bias_window(STT_MRAM, 1, OutputTopology.PARALLEL)
        assert window.is_feasible

    def test_parallel_and_series_agree_for_one_output(self):
        par = mram_bias_window(STT_MRAM, 1, OutputTopology.PARALLEL)
        ser = mram_bias_window(STT_MRAM, 1, OutputTopology.SERIES)
        assert par.v_low == pytest.approx(ser.v_low)
        assert par.v_high == pytest.approx(ser.v_high)

    def test_voltages_grow_with_outputs(self):
        v1 = mram_bias_window(STT_MRAM, 1).v_high
        v4 = mram_bias_window(STT_MRAM, 4).v_high
        assert v4 > v1

    def test_voltage_range_matches_fig9_scale(self):
        # Fig. 9(b) shows bias voltages in the ~0.2-2 V range.
        window = mram_bias_window(STT_MRAM, 10, OutputTopology.PARALLEL)
        assert 0.1 < window.v_low < 3.0
        assert 0.1 < window.v_high < 3.0

    def test_thr_window_feasible(self):
        assert mram_thr_window(STT_MRAM).is_feasible

    def test_thr_window_rejects_reram(self):
        with pytest.raises(TechnologyError):
            mram_thr_window(RERAM)

    def test_dummy_inputs_shift_window(self):
        base = mram_nor_window_with_dummies(STT_MRAM, 2, 0)
        shifted = mram_nor_window_with_dummies(STT_MRAM, 2, 4)
        assert shifted.v_low != pytest.approx(base.v_low)

    def test_invalid_arguments(self):
        with pytest.raises(BiasVoltageError):
            mram_bias_window(STT_MRAM, 0)
        with pytest.raises(BiasVoltageError):
            mram_bias_window(STT_MRAM, 1, topology="diagonal")
        with pytest.raises(BiasVoltageError):
            mram_nor_window_with_dummies(STT_MRAM, 1, -1)


class TestReramWindows:
    def test_thr_window_feasible(self):
        assert reram_thr_window(RERAM).is_feasible

    def test_nor_window_feasible(self):
        assert reram_nor_window(RERAM, 1, dummy_inputs_for(RERAM)).is_feasible

    def test_rejects_mram(self):
        with pytest.raises(TechnologyError):
            reram_thr_window(STT_MRAM)

    def test_invalid_output_count(self):
        with pytest.raises(BiasVoltageError):
            reram_nor_window(RERAM, 0)


class TestDummyInputs:
    def test_paper_values(self):
        # Appendix: D = 4 for STT, 5 for SOT/SHE, 2 for ReRAM.
        assert dummy_inputs_for(STT_MRAM) == 4
        assert dummy_inputs_for(SOT_SHE_MRAM) == 5
        assert dummy_inputs_for(RERAM) == 2


class TestNoiseMargins:
    def test_noise_margin_of_infeasible_window_is_zero(self):
        assert noise_margin_percent(BiasWindow(1.0, 0.5)) == 0.0

    def test_fig9a_parallel_margin_increases_with_outputs(self):
        points = [p for p in noise_margin_curve(STT_MRAM) if p.topology == "parallel"]
        margins = [p.noise_margin_percent for p in points]
        assert margins == sorted(margins)

    def test_fig9a_series_margin_decreases_with_outputs(self):
        points = [p for p in noise_margin_curve(STT_MRAM) if p.topology == "series"]
        margins = [p.noise_margin_percent for p in points]
        assert margins == sorted(margins, reverse=True)

    def test_fig9a_parallel_always_feasible_up_to_ten(self):
        points = [p for p in noise_margin_curve(STT_MRAM) if p.topology == "parallel"]
        assert all(p.feasible for p in points)

    def test_fig9a_series_becomes_infeasible(self):
        # The paper concludes parallel placement is the feasible/efficient
        # option; series margins drop below the 5 % minimum at large N.
        points = [p for p in noise_margin_curve(STT_MRAM) if p.topology == "series"]
        assert not points[-1].feasible

    def test_parallel_beats_series_beyond_one_output(self):
        assert max_feasible_outputs(STT_MRAM, OutputTopology.PARALLEL) > max_feasible_outputs(
            STT_MRAM, OutputTopology.SERIES
        )

    def test_minimum_noise_margin_is_five_percent(self):
        assert MINIMUM_NOISE_MARGIN_PERCENT == pytest.approx(5.0)


class TestBiasVoltageCurve:
    def test_fig9b_series_keys_present(self):
        curve = bias_voltage_curve(STT_MRAM)
        for key in ("v_low_parallel", "v_high_parallel", "v_low_series", "v_high_series"):
            assert len(curve[key]) == 10

    def test_fig9b_high_exceeds_low(self):
        curve = bias_voltage_curve(STT_MRAM)
        for low, high in zip(curve["v_low_parallel"], curve["v_high_parallel"]):
            assert high > low

    def test_fig9b_voltages_increase_with_output_count(self):
        curve = bias_voltage_curve(STT_MRAM)
        for key in ("v_low_parallel", "v_high_parallel", "v_low_series", "v_high_series"):
            assert curve[key] == sorted(curve[key])

    def test_fig9b_series_window_narrower_than_parallel_at_ten_outputs(self):
        curve = bias_voltage_curve(STT_MRAM)
        parallel_width = curve["v_high_parallel"][-1] - curve["v_low_parallel"][-1]
        series_width = curve["v_high_series"][-1] - curve["v_low_series"][-1]
        assert series_width < parallel_width

    def test_supports_reram(self):
        curve = bias_voltage_curve(RERAM, n_outputs_range=(1, 2, 3))
        assert len(curve["v_low_parallel"]) == 3
