"""Tests for the peripheral-circuitry (NVSim substitute) model."""

import pytest

from repro.errors import PimError
from repro.pim.peripheral import DEFAULT_PERIPHERAL, PeripheralModel


class TestDefaults:
    def test_default_instance_is_valid(self):
        assert DEFAULT_PERIPHERAL.row_activation_energy_fj > 0
        assert DEFAULT_PERIPHERAL.row_access_latency_ns > 0

    def test_defaults_are_small_relative_to_row_width(self):
        # One full-row read should stay in the low-pJ range for a 256-bit row.
        assert DEFAULT_PERIPHERAL.read_energy_fj(256) < 2000.0


class TestEnergy:
    def test_read_energy_scales_with_bits(self):
        model = PeripheralModel(row_activation_energy_fj=100.0, sense_energy_per_bit_fj=2.0)
        assert model.read_energy_fj(10) == pytest.approx(120.0)
        assert model.read_energy_fj(20) == pytest.approx(140.0)

    def test_write_energy_scales_with_bits(self):
        model = PeripheralModel(row_activation_energy_fj=100.0, write_driver_energy_per_bit_fj=1.5)
        assert model.write_energy_fj(10) == pytest.approx(115.0)

    def test_gate_step_energy(self):
        model = PeripheralModel(gate_drive_energy_fj=4.0)
        assert model.gate_step_energy_fj() == pytest.approx(4.0)

    def test_static_energy(self):
        model = PeripheralModel(static_power_uw=2.0)
        assert model.static_energy_fj(10.0) == pytest.approx(20.0)

    def test_zero_bit_read_rejected(self):
        with pytest.raises(PimError):
            DEFAULT_PERIPHERAL.read_energy_fj(0)

    def test_zero_bit_write_rejected(self):
        with pytest.raises(PimError):
            DEFAULT_PERIPHERAL.write_energy_fj(0)

    def test_negative_duration_rejected(self):
        with pytest.raises(PimError):
            DEFAULT_PERIPHERAL.static_energy_fj(-1.0)


class TestLatency:
    def test_access_latency(self):
        model = PeripheralModel(row_access_latency_ns=3.0)
        assert model.access_latency_ns() == pytest.approx(3.0)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "row_activation_energy_fj",
            "sense_energy_per_bit_fj",
            "write_driver_energy_per_bit_fj",
            "gate_drive_energy_fj",
            "row_access_latency_ns",
        ],
    )
    def test_negative_parameters_rejected(self, field):
        with pytest.raises(PimError):
            PeripheralModel(**{field: -1.0})
