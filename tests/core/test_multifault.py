"""Tests for the exhaustive multi-fault (k-flip) sweep engine.

Pins down the three contracts the multi-fault subsystem rests on:

* **k = 1 degeneracy** — a k = 1 multi-fault sweep equals the classic
  single-fault sweep byte-for-byte, per site and per outcome, on both
  backends (the acceptance criterion for the per-k coverage table).
* **Backend parity at k = 2** — scalar and batched k-flip executions are
  bit-exact on the Fig. 6 AND example and on a synthesized dot-2x1 block,
  under both ECiM and TRiM.
* **Budget-vs-t (Fig. 8)** — a BCH t = 2 ECiM corrects every k = 2 pair,
  including the ones Hamming-protected ECiM provably misses, and no
  combination within the per-level correction budget ever corrupts the
  outputs.
"""

import pytest

from repro.core.backend import BACKEND_NAMES, make_backend
from repro.core.sep import (
    and_gate_example_netlist,
    exhaustive_multi_fault_injection,
    exhaustive_single_fault_injection,
    multi_fault_coverage_table,
)
from repro.ecc.bch import bch_code_factory, smallest_bch_code
from repro.errors import ProtectionError
from repro.workloads.matmul import dot_product_netlist

AND2 = and_gate_example_netlist()
AND2_INPUTS = {AND2.inputs[0]: 1, AND2.inputs[1]: 1}
ALL_AND2_INPUTS = [
    {AND2.inputs[0]: a, AND2.inputs[1]: b} for a in (0, 1) for b in (0, 1)
]

DOT21 = dot_product_netlist(2, 1)
DOT21_INPUTS = {signal: 1 for signal in DOT21.inputs}

#: Stride keeping the scalar side of the dot-2x1 cross-checks affordable
#: while still covering early, middle and late sites of the schedule.
SITE_STRIDE = 50


def _outcome_tuples(analysis):
    return [
        (
            outcome.sites,
            outcome.final_outputs_correct,
            outcome.error_detected,
            outcome.corrections,
            outcome.uncorrectable_levels,
        )
        for outcome in analysis.outcomes
    ]


class TestSingleFaultDegeneracy:
    """k = 1 multi-fault sweeps equal the single-fault sweep byte-for-byte."""

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    @pytest.mark.parametrize("scheme", ["ecim", "trim"])
    @pytest.mark.parametrize("inputs", ALL_AND2_INPUTS, ids=lambda v: str(sorted(v.values())))
    def test_k1_equals_single_fault_sweep(self, backend_name, scheme, inputs):
        backend = make_backend(backend_name, AND2, scheme)
        single = exhaustive_single_fault_injection(backend, inputs)
        multi = exhaustive_multi_fault_injection(backend, inputs, k=1)
        assert multi.as_single_fault_analysis().outcomes == single.outcomes

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_k1_coverage_row_matches_single_sweep_counts(self, backend_name):
        backend = make_backend(backend_name, AND2, "ecim")
        single = exhaustive_single_fault_injection(backend, AND2_INPUTS)
        table = multi_fault_coverage_table(backend, AND2_INPUTS, max_faults=2)
        row = table[0].coverage_row()
        assert row["k"] == 1
        assert row["combinations"] == single.total_sites
        assert row["sep_guaranteed"] + row["code_corrected"] == single.protected_sites
        assert table[0].sep_guaranteed == single.sep_guaranteed

    def test_k1_chunking_is_invisible(self):
        backend = make_backend("batched", AND2, "ecim")
        whole = exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=2)
        chunked = exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=2, chunk_size=7)
        assert _outcome_tuples(whole) == _outcome_tuples(chunked)


class TestBackendParity:
    """Scalar and batched k = 2 executions are bit-exact, per combination."""

    @pytest.mark.parametrize("scheme", ["ecim", "trim"])
    def test_and2_k2_scalar_equals_batched(self, scheme):
        analyses = [
            exhaustive_multi_fault_injection(make_backend(name, AND2, scheme), AND2_INPUTS, k=2)
            for name in ("scalar", "batched")
        ]
        assert analyses[0].total_combinations > 0
        assert _outcome_tuples(analyses[0]) == _outcome_tuples(analyses[1])

    @pytest.mark.parametrize("scheme", ["ecim", "trim"])
    def test_dot21_k2_scalar_equals_batched(self, scheme):
        scalar = make_backend("scalar", DOT21, scheme)
        batched = make_backend("batched", DOT21, scheme)
        sites = scalar.enumerate_sites(DOT21_INPUTS)
        assert sites == batched.enumerate_sites(DOT21_INPUTS)
        subset = sites[::SITE_STRIDE]
        assert len(subset) >= 3
        results = [
            exhaustive_multi_fault_injection(backend, DOT21_INPUTS, k=2, sites=subset)
            for backend in (scalar, batched)
        ]
        assert results[0].total_combinations == len(subset) * (len(subset) - 1) // 2
        assert _outcome_tuples(results[0]) == _outcome_tuples(results[1])

    def test_two_flips_in_one_firing_count_two_faults(self):
        # A multi-output ECiM gate firing exposes several output positions
        # under one operation index; a pair within that firing must inject
        # two faults (not one) on both backends and agree on the outcome.
        backends = {
            name: make_backend(name, AND2, "ecim") for name in ("scalar", "batched")
        }
        sites = backends["scalar"].enumerate_sites(AND2_INPUTS)
        by_op = {}
        for site in sites:
            by_op.setdefault(site.operation_index, []).append(site)
        pair = next(group for group in by_op.values() if len(group) >= 2)[:2]
        outcomes = {}
        for name, backend in backends.items():
            analysis = exhaustive_multi_fault_injection(
                backend, AND2_INPUTS, k=2, sites=pair
            )
            assert analysis.total_combinations == 1
            outcomes[name] = _outcome_tuples(analysis)
        assert outcomes["scalar"] == outcomes["batched"]


class TestBudgetVsCodeStrength:
    """The Fig. 8 claim as a computed artefact: BCH-t recovers multi-fault
    coverage the single-error budget loses."""

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_bch_t2_corrects_pairs_hamming_misses(self, backend_name):
        hamming = exhaustive_multi_fault_injection(
            make_backend(backend_name, AND2, "ecim"), AND2_INPUTS, k=2
        )
        bch = exhaustive_multi_fault_injection(
            make_backend(backend_name, AND2, "ecim", code_factory=bch_code_factory(2)),
            AND2_INPUTS,
            k=2,
            correction_budget=2,
        )
        # Hamming-protected ECiM provably misses some double faults...
        hamming_missed = hamming.total_combinations - hamming.corrected_combinations
        assert hamming_missed > 0
        assert hamming.coverage < 1.0
        # ...while BCH t=2 corrects every pair: with a per-level budget of 2,
        # all k=2 combinations are within budget, so full coverage is the
        # *guarantee*, not luck.
        assert bch.sep_guaranteed
        assert bch.coverage == 1.0
        assert bch.silent_combinations == bch.detected_combinations == 0

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_within_budget_combinations_never_corrupt(self, backend_name):
        for code_factory, budget in ((None, 1), (bch_code_factory(2), 2)):
            backend = make_backend(
                backend_name, AND2, "ecim", code_factory=code_factory
            )
            for k in (1, 2):
                analysis = exhaustive_multi_fault_injection(
                    backend, AND2_INPUTS, k=k, correction_budget=budget
                )
                assert analysis.budget_violations == 0

    def test_bch_scalar_equals_batched(self):
        # The batched multi-error decode LUT must mirror the algebraic
        # Berlekamp-Massey decoder per combination, not just in aggregate.
        results = [
            exhaustive_multi_fault_injection(
                make_backend(name, AND2, "ecim", code_factory=bch_code_factory(2)),
                AND2_INPUTS,
                k=2,
                correction_budget=2,
            )
            for name in ("scalar", "batched")
        ]
        assert _outcome_tuples(results[0]) == _outcome_tuples(results[1])


class TestApiContracts:
    def test_k_must_be_positive(self):
        backend = make_backend("batched", AND2, "ecim")
        with pytest.raises(ProtectionError):
            exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=0)

    def test_k_beyond_site_count_fails_loudly(self):
        backend = make_backend("batched", AND2, "ecim")
        n_sites = len(backend.enumerate_sites(AND2_INPUTS))
        with pytest.raises(ProtectionError):
            exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=n_sites + 1)

    def test_chunk_size_must_be_positive(self):
        backend = make_backend("batched", AND2, "ecim")
        with pytest.raises(ProtectionError):
            exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=1, chunk_size=0)

    def test_as_single_fault_analysis_rejects_k2(self):
        backend = make_backend("batched", AND2, "ecim")
        analysis = exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=2)
        with pytest.raises(ProtectionError):
            analysis.as_single_fault_analysis()

    def test_keep_outcomes_false_keeps_counters_only(self):
        backend = make_backend("batched", AND2, "ecim")
        kept = exhaustive_multi_fault_injection(backend, AND2_INPUTS, k=2)
        counted = exhaustive_multi_fault_injection(
            backend, AND2_INPUTS, k=2, keep_outcomes=False
        )
        assert counted.outcomes == []
        assert counted.coverage_row() == kept.coverage_row()

    def test_code_factory_rejected_off_ecim(self):
        for name in BACKEND_NAMES:
            with pytest.raises(ProtectionError):
                make_backend(name, AND2, "trim", code_factory=bch_code_factory(2))

    def test_smallest_bch_code_covers_width(self):
        code = smallest_bch_code(2, 2)
        assert code.k >= 2 and code.t == 2
        wider = smallest_bch_code(8, 2)
        assert wider.k >= 8
        assert wider.n > code.n
