"""Tests for the multi-error coverage analysis."""

import pytest

from repro.core.coverage import (
    binomial_tail,
    coverage_table,
    expected_uncorrectable_levels,
    level_failure_probability,
    monte_carlo_coverage,
    run_survival_probability,
)
from repro.core.backend import BACKEND_NAMES, make_backend
from repro.core.executor import EcimExecutor, UnprotectedExecutor
from repro.core.sep import and_gate_example_netlist
from repro.errors import EvaluationError
from repro.pim.faults import FaultModel


class TestBinomialTail:
    def test_zero_probability(self):
        assert binomial_tail(100, 0.0, 1) == 0.0

    def test_certain_errors(self):
        assert binomial_tail(10, 1.0, 5) == pytest.approx(1.0)

    def test_known_value(self):
        # P[X > 1] for X ~ Bin(2, 0.5) = P[X = 2] = 0.25.
        assert binomial_tail(2, 0.5, 1) == pytest.approx(0.25)

    def test_k_at_least_n_gives_zero(self):
        assert binomial_tail(3, 0.2, 3) == 0.0

    def test_small_rate_dominated_by_first_excess_term(self):
        n, p = 200, 1e-5
        # P[X > 1] ~ C(n,2) p^2
        approximation = (n * (n - 1) / 2) * p**2
        assert binomial_tail(n, p, 1) == pytest.approx(approximation, rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(EvaluationError):
            binomial_tail(-1, 0.5, 0)
        with pytest.raises(EvaluationError):
            binomial_tail(10, 1.5, 0)


class TestAnalyticCoverage:
    SITES = [32] * 40  # 40 logic levels of 32 protected sites each

    def test_stronger_codes_survive_better(self):
        rate = 1e-3
        s1 = run_survival_probability(self.SITES, rate, correctable_errors=1)
        s2 = run_survival_probability(self.SITES, rate, correctable_errors=2)
        s3 = run_survival_probability(self.SITES, rate, correctable_errors=3)
        assert s1 < s2 < s3

    def test_lower_rates_survive_better(self):
        assert run_survival_probability(self.SITES, 1e-5) > run_survival_probability(
            self.SITES, 1e-3
        )

    def test_single_error_correction_handles_realistic_rates(self):
        # At memory-class error rates, SEP is effectively sufficient.
        assert run_survival_probability(self.SITES, 1e-7, 1) > 0.999999

    def test_expected_bad_levels_consistent_with_failure_probability(self):
        rate = 5e-3
        expected = expected_uncorrectable_levels(self.SITES, rate, 1)
        single = level_failure_probability(32, rate, 1)
        assert expected == pytest.approx(40 * single)

    def test_coverage_table_structure(self):
        rows = coverage_table(self.SITES, gate_error_rates=(1e-4, 1e-3), correction_strengths=(1, 2))
        assert len(rows) == 2
        for row in rows:
            assert row["survival_t2"] >= row["survival_t1"]
            assert 0.0 <= row["survival_t1"] <= 1.0


class TestMonteCarloCoverage:
    def _make_inputs(self, rng):
        netlist = and_gate_example_netlist()
        return {netlist.inputs[0]: rng.randint(0, 1), netlist.inputs[1]: rng.randint(0, 1)}

    def test_zero_rate_gives_full_coverage(self):
        result = monte_carlo_coverage(
            lambda injector: EcimExecutor(and_gate_example_netlist(), fault_injector=injector),
            self._make_inputs,
            gate_error_rate=0.0,
            trials=10,
        )
        assert result.coverage == pytest.approx(1.0)
        assert result.total_faults_injected == 0

    def test_protected_executor_retains_coverage_despite_more_exposure(self):
        # ECiM issues ~10x more gate operations than the unprotected run
        # (metadata updates), so at the same per-operation error rate it is
        # exposed to far more faults — and still keeps its outputs correct in
        # the vast majority of runs thanks to the per-level correction.
        rate = 0.02
        ecim = monte_carlo_coverage(
            lambda injector: EcimExecutor(and_gate_example_netlist(), fault_injector=injector),
            self._make_inputs,
            gate_error_rate=rate,
            trials=40,
            seed=5,
        )
        unprotected = monte_carlo_coverage(
            lambda injector: UnprotectedExecutor(and_gate_example_netlist(), fault_injector=injector),
            self._make_inputs,
            gate_error_rate=rate,
            trials=40,
            seed=5,
        )
        assert ecim.total_faults_injected > unprotected.total_faults_injected
        assert ecim.coverage >= 0.85
        assert ecim.total_corrections > 0

    def test_statistics_accumulate(self):
        result = monte_carlo_coverage(
            lambda injector: EcimExecutor(and_gate_example_netlist(), fault_injector=injector),
            self._make_inputs,
            gate_error_rate=0.05,
            trials=20,
            seed=9,
        )
        assert result.trials == 20
        assert result.average_faults_per_run > 0.0

    def test_invalid_trials(self):
        with pytest.raises(EvaluationError):
            monte_carlo_coverage(lambda injector: None, self._make_inputs, 0.1, trials=0)


class TestMonteCarloBackends:
    """Coverage runs speak the ExecutionBackend protocol and reproduce from a
    single int seed on either backend (the campaign seeding discipline)."""

    def _make_inputs(self, rng):
        netlist = and_gate_example_netlist()
        return {netlist.inputs[0]: rng.randint(0, 1), netlist.inputs[1]: rng.randint(0, 1)}

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_reproducible_from_single_seed(self, backend):
        kwargs = dict(gate_error_rate=0.03, trials=30, seed=11)
        runs = [
            monte_carlo_coverage(
                make_backend(backend, and_gate_example_netlist(), "ecim"),
                self._make_inputs,
                **kwargs,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].total_faults_injected > 0

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_trial_seeds_are_independent_streams(self, backend):
        # Dropping the trial count must not change the earlier trials'
        # outcomes-per-seed structure: a 20-trial run injects at most as many
        # faults as the 40-trial run at the same seed, never a reshuffle that
        # produces more.
        common = dict(gate_error_rate=0.05, seed=4)
        netlist = and_gate_example_netlist()
        short = monte_carlo_coverage(
            make_backend(backend, netlist, "ecim"), self._make_inputs, trials=20, **common
        )
        long = monte_carlo_coverage(
            make_backend(backend, netlist, "ecim"), self._make_inputs, trials=40, **common
        )
        assert short.total_faults_injected <= long.total_faults_injected

    def test_zero_rate_identical_across_backends(self):
        # Fault-free coverage is a deterministic function of the input
        # sampler, which both backends share bit-for-bit.
        results = [
            monte_carlo_coverage(
                make_backend(backend, and_gate_example_netlist(), "trim"),
                self._make_inputs,
                gate_error_rate=0.0,
                trials=25,
                seed=2,
            )
            for backend in BACKEND_NAMES
        ]
        assert results[0] == results[1]
        assert results[0].coverage == pytest.approx(1.0)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_custom_fault_model_override(self, backend):
        result = monte_carlo_coverage(
            make_backend(backend, and_gate_example_netlist(), "ecim"),
            self._make_inputs,
            gate_error_rate=0.0,
            trials=25,
            seed=6,
            model=FaultModel(memory_error_rate=0.1),
        )
        assert result.total_faults_injected > 0
