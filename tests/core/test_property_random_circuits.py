"""Property-based tests: random NOR/THR circuits behave identically under
functional evaluation, unprotected execution and protected execution, and the
SEP guarantee holds on randomly generated circuits, not just the paper's
hand-picked example."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.netlist import Netlist
from repro.core.executor import EcimExecutor, TrimExecutor, UnprotectedExecutor
from repro.core.sep import enumerate_fault_sites, exhaustive_single_fault_injection
from repro.pim.gates import GateType


def random_netlist(seed: int, n_inputs: int, n_gates: int) -> Netlist:
    """Generate a random combinational NOR/NOT/THR netlist.

    Gates draw their operands uniformly from the signals produced so far, so
    the construction order is automatically topological and the circuit
    exercises arbitrary level structures (wide, narrow, reconvergent).
    """
    rng = random.Random(seed)
    netlist = Netlist(name=f"random-{seed}")
    signals = [netlist.add_input(f"in{i}") for i in range(n_inputs)]
    for _ in range(n_gates):
        choice = rng.random()
        if choice < 0.5:
            operands = rng.sample(signals, k=min(len(signals), rng.randint(1, 3)))
            signal = netlist.add_gate(GateType.NOR, operands)
        elif choice < 0.7:
            signal = netlist.add_gate(GateType.NOT, [rng.choice(signals)])
        else:
            operands = [rng.choice(signals) for _ in range(4)]
            # THR needs input/output distinctness only; duplicate inputs are fine.
            operands = list(dict.fromkeys(operands)) or [rng.choice(signals)]
            while len(operands) < 4:
                operands.append(operands[-1])
            signal = netlist.add_gate(GateType.THR, operands, threshold=3)
        signals.append(signal)
    # Mark the last few produced signals as outputs.
    for signal in signals[-min(4, len(signals)):]:
        netlist.mark_output(signal)
    return netlist


def random_inputs(netlist: Netlist, seed: int):
    rng = random.Random(seed ^ 0x5EED)
    return {signal: rng.randint(0, 1) for signal in netlist.inputs}


class TestExecutorEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_inputs=st.integers(min_value=2, max_value=5),
        n_gates=st.integers(min_value=3, max_value=20),
    )
    def test_all_executors_match_the_golden_model(self, seed, n_inputs, n_gates):
        netlist = random_netlist(seed, n_inputs, n_gates)
        inputs = random_inputs(netlist, seed)
        golden = netlist.evaluate_outputs(inputs)
        for executor_cls in (UnprotectedExecutor, EcimExecutor, TrimExecutor):
            report = executor_cls(random_netlist(seed, n_inputs, n_gates)).run(dict(inputs))
            assert report.outputs == golden, executor_cls.__name__

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_gates=st.integers(min_value=3, max_value=12),
    )
    def test_ecim_single_output_variant_matches(self, seed, n_gates):
        netlist = random_netlist(seed, 3, n_gates)
        inputs = random_inputs(netlist, seed)
        golden = netlist.evaluate_outputs(inputs)
        report = EcimExecutor(
            random_netlist(seed, 3, n_gates), multi_output=False
        ).run(dict(inputs))
        assert report.outputs == golden


class TestSepOnRandomCircuits:
    @pytest.mark.parametrize("seed", [11, 42, 1234])
    def test_ecim_sep_holds_exhaustively(self, seed):
        netlist = random_netlist(seed, n_inputs=3, n_gates=8)
        inputs = random_inputs(netlist, seed)

        def make(injector):
            return EcimExecutor(random_netlist(seed, 3, 8), fault_injector=injector)

        analysis = exhaustive_single_fault_injection(make, inputs)
        assert analysis.total_sites > 8
        assert analysis.sep_guaranteed, analysis.unprotected_sites

    @pytest.mark.parametrize("seed", [7, 99])
    def test_trim_sep_holds_exhaustively(self, seed):
        netlist = random_netlist(seed, n_inputs=3, n_gates=8)
        inputs = random_inputs(netlist, seed)

        def make(injector):
            return TrimExecutor(random_netlist(seed, 3, 8), fault_injector=injector)

        analysis = exhaustive_single_fault_injection(make, inputs)
        assert analysis.sep_guaranteed, analysis.unprotected_sites

    def test_fault_site_enumeration_is_deterministic(self):
        netlist = random_netlist(5, 3, 10)
        inputs = random_inputs(netlist, 5)

        def make(injector):
            return EcimExecutor(random_netlist(5, 3, 10), fault_injector=injector)

        first = enumerate_fault_sites(make, inputs)
        second = enumerate_fault_sites(make, inputs)
        assert first == second
