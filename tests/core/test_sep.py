"""Tests for the SEP guarantee analysis (Fig. 6).

The analyses accept either a legacy ``make_executor`` factory (adapted into
a :class:`~repro.core.backend.ScalarBackend`) or any
:class:`~repro.core.backend.ExecutionBackend`; the factory-based tests below
exercise the adaptation path, :class:`TestBackendParity` the protocol path
on both backends.
"""

import pytest

from repro.core.backend import BACKEND_NAMES, make_backend
from repro.core.executor import EcimExecutor, TrimExecutor, UnprotectedExecutor
from repro.core.sep import (
    and_gate_example_netlist,
    circuit_granularity_counterexample,
    enumerate_fault_sites,
    exhaustive_single_fault_injection,
    fig6_case_table,
)


def make_ecim(injector):
    return EcimExecutor(and_gate_example_netlist(), fault_injector=injector)


def make_ecim_single_output(injector):
    return EcimExecutor(and_gate_example_netlist(), multi_output=False, fault_injector=injector)


def make_trim(injector):
    return TrimExecutor(and_gate_example_netlist(), fault_injector=injector)


def make_unprotected(injector):
    return UnprotectedExecutor(and_gate_example_netlist(), fault_injector=injector)


NETLIST = and_gate_example_netlist()
ALL_INPUT_VECTORS = [
    {NETLIST.inputs[0]: a, NETLIST.inputs[1]: b} for a in (0, 1) for b in (0, 1)
]


class TestExampleCircuit:
    def test_is_an_and_gate(self):
        netlist = and_gate_example_netlist()
        for a in (0, 1):
            for b in (0, 1):
                outputs = netlist.evaluate_outputs({netlist.inputs[0]: a, netlist.inputs[1]: b})
                assert list(outputs.values()) == [a & b]

    def test_has_two_logic_levels_and_three_gates(self):
        netlist = and_gate_example_netlist()
        assert netlist.depth == 2
        assert netlist.stats().n_gates == 3


class TestFaultSiteEnumeration:
    def test_sites_cover_every_gate_output(self):
        inputs = ALL_INPUT_VECTORS[3]
        sites = enumerate_fault_sites(make_ecim, inputs)
        # Every (operation, output position) pair appears exactly once.
        assert len({(s.operation_index, s.output_position) for s in sites}) == len(sites)
        assert any(s.output_position > 0 for s in sites)  # multi-output r_ij sites
        assert any(s.is_metadata for s in sites)          # parity-update sites

    def test_unprotected_sites_are_three_gates(self):
        sites = enumerate_fault_sites(make_unprotected, ALL_INPUT_VECTORS[3])
        assert len(sites) == 3


class TestSepGuarantee:
    @pytest.mark.parametrize("inputs", ALL_INPUT_VECTORS)
    def test_ecim_sep_for_all_input_vectors(self, inputs):
        analysis = exhaustive_single_fault_injection(make_ecim, inputs)
        assert analysis.sep_guaranteed, analysis.unprotected_sites

    @pytest.mark.parametrize("inputs", ALL_INPUT_VECTORS)
    def test_trim_sep_for_all_input_vectors(self, inputs):
        analysis = exhaustive_single_fault_injection(make_trim, inputs)
        assert analysis.sep_guaranteed, analysis.unprotected_sites

    def test_ecim_single_output_sep(self):
        analysis = exhaustive_single_fault_injection(make_ecim_single_output, ALL_INPUT_VECTORS[3])
        assert analysis.sep_guaranteed

    def test_unprotected_execution_is_vulnerable(self):
        analysis = exhaustive_single_fault_injection(make_unprotected, ALL_INPUT_VECTORS[3])
        assert not analysis.sep_guaranteed
        assert analysis.coverage < 1.0

    def test_coverage_and_categories(self):
        analysis = exhaustive_single_fault_injection(make_ecim, ALL_INPUT_VECTORS[3])
        assert analysis.coverage == pytest.approx(1.0)
        categories = analysis.by_category()
        assert set(categories) == {"data", "metadata"}
        for protected, total in categories.values():
            assert protected == total


class TestFig6CaseTable:
    def test_case_table_rows_all_protected(self):
        rows = fig6_case_table(make_ecim)
        assert rows
        assert all(row["protected"] for row in rows)

    def test_case_table_distinguishes_data_and_metadata_sites(self):
        rows = fig6_case_table(make_ecim)
        names = {row["error_site"] for row in rows}
        assert any("level-1" in name for name in names)
        assert any("parity" in name for name in names)

    def test_data_errors_show_one_error_in_level_output(self):
        rows = fig6_case_table(make_ecim)
        for row in rows:
            if "level-1" in row["error_site"] or "final output" in row["error_site"]:
                assert row["errors_in_level_output"] == 1
            else:
                assert row["errors_in_level_output"] == 0


class TestGranularityRequirement:
    def test_circuit_granularity_loses_sep(self):
        # A single early fault propagates to the final output when no
        # per-level correction happens (Section IV-F).
        assert circuit_granularity_counterexample(make_unprotected)


class TestBackendParity:
    """The same analyses through the ExecutionBackend protocol, per backend."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("inputs", ALL_INPUT_VECTORS)
    def test_ecim_sep_on_every_backend(self, backend, inputs):
        analysis = exhaustive_single_fault_injection(
            make_backend(backend, and_gate_example_netlist(), "ecim"), inputs
        )
        assert analysis.sep_guaranteed, analysis.unprotected_sites

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_trim_sep_on_every_backend(self, backend):
        analysis = exhaustive_single_fault_injection(
            make_backend(backend, and_gate_example_netlist(), "trim"),
            ALL_INPUT_VECTORS[3],
        )
        assert analysis.sep_guaranteed

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_case_table_identical_across_backends(self, backend):
        # The acceptance criterion's operational form: the Fig. 6 case table
        # must be *equal* to the factory-based scalar reference, row for row.
        reference = fig6_case_table(make_ecim)
        table = fig6_case_table(make_backend(backend, and_gate_example_netlist(), "ecim"))
        assert table == reference

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_circuit_granularity_counterexample_on_every_backend(self, backend):
        assert circuit_granularity_counterexample(
            make_backend(backend, and_gate_example_netlist(), "unprotected")
        )

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_fault_outcome_classification_vocabulary(self, backend):
        analysis = exhaustive_single_fault_injection(
            make_backend(backend, and_gate_example_netlist(), "unprotected"),
            ALL_INPUT_VECTORS[3],
        )
        assert {o.classification for o in analysis.outcomes} <= {
            "corrected", "detected", "silent"
        }
        assert any(o.classification == "silent" for o in analysis.outcomes)
