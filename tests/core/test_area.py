"""Tests for the iso-area budget and area-reclaim accounting."""

import pytest

from repro.core.area import ArrayBudget, RowFootprint, area_reclaims, reclaim_cost_bits, scratch_capacity
from repro.core.protection import EcimScheme, TrimScheme, UnprotectedScheme
from repro.errors import AllocationError, ProtectionError


BUDGET = ArrayBudget()
FOOTPRINT = RowFootprint(data_columns=40, scratch_claims=5000.0, rows_used=64)


class TestArrayBudget:
    def test_paper_defaults(self):
        assert BUDGET.n_arrays == 16
        assert BUDGET.rows == 256
        assert BUDGET.cols == 256
        assert BUDGET.total_cells == 16 * 256 * 256
        assert BUDGET.total_rows == 16 * 256

    def test_invalid_budget(self):
        with pytest.raises(ProtectionError):
            ArrayBudget(n_arrays=0)

    def test_invalid_footprint(self):
        with pytest.raises(ProtectionError):
            RowFootprint(data_columns=-1, scratch_claims=0.0)


class TestScratchCapacity:
    def test_unprotected_gets_all_free_columns(self):
        capacity = scratch_capacity(BUDGET, UnprotectedScheme(), FOOTPRINT)
        assert capacity == pytest.approx(256 - 40)

    def test_ecim_loses_a_small_fraction(self):
        unprotected = scratch_capacity(BUDGET, UnprotectedScheme(), FOOTPRINT)
        ecim = scratch_capacity(BUDGET, EcimScheme(), FOOTPRINT)
        assert 0.9 * unprotected < ecim < unprotected

    def test_trim_loses_two_thirds(self):
        unprotected = scratch_capacity(BUDGET, UnprotectedScheme(), FOOTPRINT)
        trim = scratch_capacity(BUDGET, TrimScheme(), FOOTPRINT)
        assert trim == pytest.approx(unprotected / 3.0)

    def test_oversized_resident_data_rejected(self):
        with pytest.raises(AllocationError):
            scratch_capacity(BUDGET, UnprotectedScheme(), RowFootprint(300, 100.0))


class TestAreaReclaims:
    def test_small_workload_needs_no_reclaims(self):
        footprint = RowFootprint(data_columns=16, scratch_claims=50.0)
        assert area_reclaims(BUDGET, EcimScheme(), footprint) == 0

    def test_trim_reclaims_exceed_ecim_reclaims(self):
        ecim = area_reclaims(BUDGET, EcimScheme(), FOOTPRINT)
        trim = area_reclaims(BUDGET, TrimScheme(), FOOTPRINT)
        unprotected = area_reclaims(BUDGET, UnprotectedScheme(), FOOTPRINT)
        assert unprotected <= ecim < trim
        # Table IV shape: TRiM needs roughly 3-4x the reclaims of ECiM.
        assert trim >= 2.5 * ecim

    def test_reclaims_grow_with_demand(self):
        small = area_reclaims(BUDGET, EcimScheme(), RowFootprint(40, 2000.0))
        large = area_reclaims(BUDGET, EcimScheme(), RowFootprint(40, 20000.0))
        assert large > small

    def test_live_fraction_sensitivity(self):
        relaxed = area_reclaims(BUDGET, TrimScheme(), FOOTPRINT, live_fraction=0.1)
        pinned = area_reclaims(BUDGET, TrimScheme(), FOOTPRINT, live_fraction=0.7)
        assert pinned > relaxed

    def test_single_output_trim_same_column_footprint(self):
        # TRiM's redundant copies occupy the same columns whether produced by
        # multi-output gates or by re-execution.
        assert area_reclaims(BUDGET, TrimScheme(), FOOTPRINT, multi_output=True) == area_reclaims(
            BUDGET, TrimScheme(), FOOTPRINT, multi_output=False
        )


class TestReclaimCost:
    def test_cost_bits_positive_and_bounded_by_capacity(self):
        for scheme in (UnprotectedScheme(), EcimScheme(), TrimScheme()):
            bits = reclaim_cost_bits(BUDGET, scheme, FOOTPRINT)
            assert 0 < bits <= scratch_capacity(BUDGET, scheme, FOOTPRINT)

    def test_trim_reclaims_recycle_fewer_cells_per_event(self):
        assert reclaim_cost_bits(BUDGET, TrimScheme(), FOOTPRINT) < reclaim_cost_bits(
            BUDGET, EcimScheme(), FOOTPRINT
        )
