"""The ExecutionBackend protocol: dispatch, adaptation, outcome schema and
fault-source validation.

Cross-backend equivalence (site enumeration, exhaustive per-site SEP
classification, byte-identical fault-model outcomes) lives in the
systematic differential harness under ``tests/differential/``.
"""

import numpy as np
import pytest

from repro.campaign.spec import trial_seed
from repro.campaign.workloads import get_campaign_workload, sample_inputs
from repro.core.backend import (
    BACKEND_NAMES,
    BatchedBackend,
    BitpackedBackend,
    ExecutionBackend,
    ScalarBackend,
    as_backend,
    derive_seed,
    make_backend,
)
from repro.core.executor import EcimExecutor
from repro.core.sep import and_gate_example_netlist
from repro.errors import ProtectionError
from repro.pim.faults import FaultModel, FaultModelSpec

AND2 = and_gate_example_netlist()
AND2_INPUTS = {AND2.inputs[0]: 1, AND2.inputs[1]: 1}


class TestDispatch:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("scalar", "batched", "bitpacked")

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("scalar", ScalarBackend),
            ("batched", BatchedBackend),
            ("bitpacked", BitpackedBackend),
        ],
    )
    def test_make_backend_builds_the_named_backend(self, name, cls):
        backend = make_backend(name, AND2, "ecim")
        assert isinstance(backend, cls)
        assert backend.name == name
        assert backend.scheme == "ecim"

    def test_unknown_backend_fails_fast_with_choices(self):
        # A --backend typo on any CLI funnels through here, so the error
        # must name every registered backend.
        with pytest.raises(ProtectionError, match=r"scalar.*batched.*bitpacked"):
            make_backend("vectorised", AND2, "ecim")

    def test_unknown_backend_error_lists_every_registered_name(self):
        with pytest.raises(ProtectionError) as excinfo:
            make_backend("vectorised", AND2, "ecim")
        message = str(excinfo.value)
        assert "'vectorised'" in message
        for name in BACKEND_NAMES:
            assert repr(name) in message

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_unknown_scheme_rejected_at_construction(self, name):
        with pytest.raises(ProtectionError):
            make_backend(name, AND2, "parity")

    def test_as_backend_passes_backends_through(self):
        backend = make_backend("batched", AND2, "trim")
        assert as_backend(backend) is backend

    def test_as_backend_adapts_legacy_factories(self):
        backend = as_backend(lambda injector: EcimExecutor(AND2, fault_injector=injector))
        assert isinstance(backend, ScalarBackend)
        outcomes = backend.run_trials([AND2_INPUTS])
        assert outcomes.n_trials == 1
        assert bool(outcomes.outputs_correct[0])
        # The netlist is resolved from the factory's executor.
        assert backend.netlist is AND2

    def test_as_backend_rejects_non_callables(self):
        with pytest.raises(ProtectionError):
            as_backend(42)


class TestDerivedSeeds:
    def test_deterministic_and_distinct_per_component(self):
        assert derive_seed(1, "x", 2, "inputs") == derive_seed(1, "x", 2, "inputs")
        assert derive_seed(1, "x", 2, "inputs") != derive_seed(1, "x", 2, "faults")
        assert derive_seed(1, "x", 2, "inputs") != derive_seed(1, "x", 3, "inputs")

    def test_campaign_trial_seed_byte_layout_preserved(self):
        # trial_seed delegates to derive_seed; the historical SHA-256 payload
        # must be unchanged or every existing checkpoint would orphan.
        import hashlib

        expected = int.from_bytes(
            hashlib.sha256("7|cellkey|41|faults".encode()).digest()[:8], "big"
        )
        assert trial_seed(7, "cellkey", 41, "faults") == expected
        assert derive_seed(7, "cellkey", 41, "faults") == expected


class TestRunTrialsSurface:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_dict_rows_and_matrix_inputs_agree(self, name):
        backend = make_backend(name, AND2, "ecim")
        rows = [{AND2.inputs[0]: a, AND2.inputs[1]: b} for a in (0, 1) for b in (0, 1)]
        matrix = np.array([[r[s] for s in AND2.inputs] for r in rows], dtype=np.uint8)
        from_rows = backend.run_trials(rows)
        from_matrix = backend.run_trials(matrix)
        assert np.array_equal(from_rows.outputs_correct, from_matrix.outputs_correct)
        assert from_rows.counts() == from_matrix.counts()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_empty_batch_rejected(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_stochastic_model_requires_per_trial_seeds(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS], model=FaultModel(gate_error_rate=0.1))

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fault_seeds_without_model_rejected(self, name):
        # A forgotten model= kwarg must not silently run fault-free.
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS], fault_seeds=[1])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_error_free_model_with_seeds_is_allowed(self, name):
        # The zero-rate point of a coverage sweep passes seeds alongside an
        # all-zero model; that stays valid (and fault free).
        backend = make_backend(name, AND2, "ecim")
        outcomes = backend.run_trials([AND2_INPUTS], model=FaultModel(), fault_seeds=[1])
        assert outcomes.faults_injected.sum() == 0

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fault_plan_and_stochastic_model_are_exclusive(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials(
                [AND2_INPUTS],
                fault_plan=[{0: 0}],
                model=FaultModel(gate_error_rate=0.1),
                fault_seeds=[1],
            )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_counts_schema_matches_campaign_keys(self, name):
        from repro.campaign.aggregate import COUNT_KEYS

        backend = make_backend(name, AND2, "trim")
        counts = backend.run_trials([AND2_INPUTS] * 3).counts()
        assert set(counts) == set(COUNT_KEYS)
        assert counts["trials"] == 3

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_classifications_vocabulary(self, name):
        backend = make_backend(name, AND2, "unprotected")
        outcomes = backend.run_trials(
            [AND2_INPUTS] * 2, fault_plan=[{}, {2: 0}]
        )
        # No fault -> correct; flipping the final AND output on (1, 1) is a
        # silent corruption on the unprotected baseline.
        assert outcomes.classifications() == ["corrected", "silent"]


class TestFaultModelSurface:
    """Validation of the declarative fault_model source on both backends."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fault_model_exclusive_with_fault_plan(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials(
                [AND2_INPUTS],
                fault_plan=[{0: 0}],
                fault_model=FaultModelSpec.stuck_at((0,)),
            )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fault_model_exclusive_with_stochastic_model(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials(
                [AND2_INPUTS],
                model=FaultModel(gate_error_rate=0.1),
                fault_model=FaultModelSpec.stochastic(0.1),
                fault_seeds=[1],
            )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    @pytest.mark.parametrize(
        "spec",
        [FaultModelSpec.stochastic(0.1), FaultModelSpec.burst(2, 4, gate_error_rate=0.1)],
        ids=["stochastic", "burst"],
    )
    def test_drawing_models_require_per_trial_seeds(self, name, spec):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS], fault_model=spec)
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS] * 2, fault_model=spec, fault_seeds=[1])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_stuck_at_needs_no_seeds(self, name):
        backend = make_backend(name, AND2, "trim")
        outcomes = backend.run_trials(
            [AND2_INPUTS], fault_model=FaultModelSpec.stuck_at((0,), 0)
        )
        assert outcomes.n_trials == 1

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_out_of_range_stuck_column_fails_fast(self, name):
        # Silently injecting nothing at a site the execution never touches
        # would masquerade as fault-free coverage.
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError, match="stuck column"):
            backend.run_trials(
                [AND2_INPUTS], fault_model=FaultModelSpec.stuck_at((10_000,), 1)
            )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_error_free_fault_model_runs_clean(self, name):
        backend = make_backend(name, AND2, "ecim")
        outcomes = backend.run_trials(
            [AND2_INPUTS], fault_model=FaultModelSpec.stochastic(0.0)
        )
        assert outcomes.faults_injected.sum() == 0
        assert bool(outcomes.outputs_correct[0])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_seeds_with_non_drawing_fault_model_rejected(self, name):
        # An unresolved ("inherit") spec draws nothing; seeds alongside it
        # would silently run fault-free and masquerade as 100% coverage.
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError, match="draws nothing"):
            backend.run_trials(
                [AND2_INPUTS], fault_model=FaultModelSpec.burst(3, 8), fault_seeds=[1]
            )
        with pytest.raises(ProtectionError, match="draws nothing"):
            backend.run_trials(
                [AND2_INPUTS],
                fault_model=FaultModelSpec.stuck_at((0,), 1),
                fault_seeds=[1],
            )


# NOTE: the scalar-vs-batched equivalence tests that used to live here
# (site enumeration, exhaustive per-site SEP classification) moved into the
# systematic cross-backend harness in tests/differential/, which also covers
# byte-identical TrialOutcomes for the declarative fault-model layer.


class TestStochasticEquivalence:
    def test_fixed_seeds_reproduce_on_both_backends(self):
        netlist = get_campaign_workload("dot2").netlist
        model = FaultModel(gate_error_rate=5e-3)
        seeds = [derive_seed(3, t, "faults") for t in range(50)]
        rows = [sample_inputs(netlist, __import__("random").Random(t)) for t in range(50)]
        for name in BACKEND_NAMES:
            backend = make_backend(name, netlist, "ecim")
            first = backend.run_trials(rows, model=model, fault_seeds=seeds)
            again = backend.run_trials(rows, model=model, fault_seeds=seeds)
            assert first.counts() == again.counts()
            assert np.array_equal(first.faults_injected, again.faults_injected)

    def test_protocol_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutionBackend()
