"""The ExecutionBackend protocol: dispatch, adaptation, outcome schema, and
scalar/batched equivalence at the SEP layer.

The load-bearing contract (ISSUE 3 acceptance): every enumerated fault site
on the Fig. 6 AND netlist and on a synthesized workload netlist must
classify identically (corrected / detected / silent) under both backends,
for both ECiM and TRiM.
"""

import numpy as np
import pytest

from repro.campaign.spec import trial_seed
from repro.campaign.workloads import get_campaign_workload, sample_inputs
from repro.core.backend import (
    BACKEND_NAMES,
    BatchedBackend,
    ExecutionBackend,
    ScalarBackend,
    as_backend,
    derive_seed,
    make_backend,
)
from repro.core.executor import EcimExecutor
from repro.core.sep import and_gate_example_netlist, exhaustive_single_fault_injection
from repro.errors import ProtectionError
from repro.pim.faults import FaultModel

AND2 = and_gate_example_netlist()
AND2_INPUTS = {AND2.inputs[0]: 1, AND2.inputs[1]: 1}


class TestDispatch:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("scalar", "batched")

    @pytest.mark.parametrize("name,cls", [("scalar", ScalarBackend), ("batched", BatchedBackend)])
    def test_make_backend_builds_the_named_backend(self, name, cls):
        backend = make_backend(name, AND2, "ecim")
        assert isinstance(backend, cls)
        assert backend.name == name
        assert backend.scheme == "ecim"

    def test_unknown_backend_fails_fast_with_choices(self):
        with pytest.raises(ProtectionError, match=r"scalar.*batched"):
            make_backend("vectorised", AND2, "ecim")

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_unknown_scheme_rejected_at_construction(self, name):
        with pytest.raises(ProtectionError):
            make_backend(name, AND2, "parity")

    def test_as_backend_passes_backends_through(self):
        backend = make_backend("batched", AND2, "trim")
        assert as_backend(backend) is backend

    def test_as_backend_adapts_legacy_factories(self):
        backend = as_backend(lambda injector: EcimExecutor(AND2, fault_injector=injector))
        assert isinstance(backend, ScalarBackend)
        outcomes = backend.run_trials([AND2_INPUTS])
        assert outcomes.n_trials == 1
        assert bool(outcomes.outputs_correct[0])
        # The netlist is resolved from the factory's executor.
        assert backend.netlist is AND2

    def test_as_backend_rejects_non_callables(self):
        with pytest.raises(ProtectionError):
            as_backend(42)


class TestDerivedSeeds:
    def test_deterministic_and_distinct_per_component(self):
        assert derive_seed(1, "x", 2, "inputs") == derive_seed(1, "x", 2, "inputs")
        assert derive_seed(1, "x", 2, "inputs") != derive_seed(1, "x", 2, "faults")
        assert derive_seed(1, "x", 2, "inputs") != derive_seed(1, "x", 3, "inputs")

    def test_campaign_trial_seed_byte_layout_preserved(self):
        # trial_seed delegates to derive_seed; the historical SHA-256 payload
        # must be unchanged or every existing checkpoint would orphan.
        import hashlib

        expected = int.from_bytes(
            hashlib.sha256("7|cellkey|41|faults".encode()).digest()[:8], "big"
        )
        assert trial_seed(7, "cellkey", 41, "faults") == expected
        assert derive_seed(7, "cellkey", 41, "faults") == expected


class TestRunTrialsSurface:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_dict_rows_and_matrix_inputs_agree(self, name):
        backend = make_backend(name, AND2, "ecim")
        rows = [{AND2.inputs[0]: a, AND2.inputs[1]: b} for a in (0, 1) for b in (0, 1)]
        matrix = np.array([[r[s] for s in AND2.inputs] for r in rows], dtype=np.uint8)
        from_rows = backend.run_trials(rows)
        from_matrix = backend.run_trials(matrix)
        assert np.array_equal(from_rows.outputs_correct, from_matrix.outputs_correct)
        assert from_rows.counts() == from_matrix.counts()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_empty_batch_rejected(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_stochastic_model_requires_per_trial_seeds(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS], model=FaultModel(gate_error_rate=0.1))

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fault_seeds_without_model_rejected(self, name):
        # A forgotten model= kwarg must not silently run fault-free.
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS], fault_seeds=[1])

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_error_free_model_with_seeds_is_allowed(self, name):
        # The zero-rate point of a coverage sweep passes seeds alongside an
        # all-zero model; that stays valid (and fault free).
        backend = make_backend(name, AND2, "ecim")
        outcomes = backend.run_trials([AND2_INPUTS], model=FaultModel(), fault_seeds=[1])
        assert outcomes.faults_injected.sum() == 0

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_fault_plan_and_stochastic_model_are_exclusive(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials(
                [AND2_INPUTS],
                fault_plan=[{0: 0}],
                model=FaultModel(gate_error_rate=0.1),
                fault_seeds=[1],
            )

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_counts_schema_matches_campaign_keys(self, name):
        from repro.campaign.aggregate import COUNT_KEYS

        backend = make_backend(name, AND2, "trim")
        counts = backend.run_trials([AND2_INPUTS] * 3).counts()
        assert set(counts) == set(COUNT_KEYS)
        assert counts["trials"] == 3

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_classifications_vocabulary(self, name):
        backend = make_backend(name, AND2, "unprotected")
        outcomes = backend.run_trials(
            [AND2_INPUTS] * 2, fault_plan=[{}, {2: 0}]
        )
        # No fault -> correct; flipping the final AND output on (1, 1) is a
        # silent corruption on the unprotected baseline.
        assert outcomes.classifications() == ["corrected", "silent"]


class TestSiteEnumerationEquivalence:
    @pytest.mark.parametrize("workload", ["and2", "dot2"])
    @pytest.mark.parametrize(
        "scheme,multi_output",
        [("ecim", True), ("ecim", False), ("trim", True), ("trim", False)],
    )
    def test_both_backends_enumerate_identical_sites(self, workload, scheme, multi_output):
        netlist = get_campaign_workload(workload).netlist
        inputs = {signal: 1 for signal in netlist.inputs}
        scalar_sites = make_backend(
            "scalar", netlist, scheme, multi_output=multi_output
        ).enumerate_sites(inputs)
        batched_sites = make_backend(
            "batched", netlist, scheme, multi_output=multi_output
        ).enumerate_sites(inputs)
        # Full FaultSite equality: op index, position, gate, metadata flag,
        # logic level and physical column all agree, in firing order.
        assert scalar_sites == batched_sites
        assert scalar_sites


def _synthesized_dot_netlist():
    """The smallest synthesized mm-family unit block (2-term dot product,
    1-bit operands): 60 gates — big enough to exercise multi-level parity
    banks, small enough for a full scalar sweep in tier-1 time."""
    from repro.workloads.matmul import dot_product_netlist

    return dot_product_netlist(2, 1)


class TestSepEquivalence:
    """Acceptance: per-site outcome equality between backends, exhaustively —
    on the Fig. 6 AND example and on a synthesized workload netlist."""

    @pytest.mark.parametrize("workload", ["and2", "dot-2x1"])
    @pytest.mark.parametrize("scheme", ["ecim", "trim"])
    def test_every_site_classifies_identically(self, workload, scheme):
        netlist = (
            get_campaign_workload("and2").netlist
            if workload == "and2"
            else _synthesized_dot_netlist()
        )
        import random

        inputs = sample_inputs(netlist, random.Random(13))
        scalar = exhaustive_single_fault_injection(
            make_backend("scalar", netlist, scheme), inputs
        )
        batched = exhaustive_single_fault_injection(
            make_backend("batched", netlist, scheme), inputs
        )
        assert scalar.total_sites == batched.total_sites > 0
        for s, b in zip(scalar.outcomes, batched.outcomes):
            assert s.site == b.site
            assert s.classification == b.classification, s.site
            assert (s.final_outputs_correct, s.error_detected, s.corrections,
                    s.uncorrectable_levels) == (
                b.final_outputs_correct, b.error_detected, b.corrections,
                b.uncorrectable_levels), s.site
        # And SEP itself holds on the protected schemes.
        assert scalar.sep_guaranteed and batched.sep_guaranteed

    def test_unprotected_classifications_also_agree(self):
        netlist = get_campaign_workload("and2").netlist
        inputs = {netlist.inputs[0]: 1, netlist.inputs[1]: 1}
        scalar = exhaustive_single_fault_injection(
            make_backend("scalar", netlist, "unprotected"), inputs
        )
        batched = exhaustive_single_fault_injection(
            make_backend("batched", netlist, "unprotected"), inputs
        )
        assert [o.classification for o in scalar.outcomes] == [
            o.classification for o in batched.outcomes
        ]
        assert not scalar.sep_guaranteed and not batched.sep_guaranteed


class TestStochasticEquivalence:
    def test_fixed_seeds_reproduce_on_both_backends(self):
        netlist = get_campaign_workload("dot2").netlist
        model = FaultModel(gate_error_rate=5e-3)
        seeds = [derive_seed(3, t, "faults") for t in range(50)]
        rows = [sample_inputs(netlist, __import__("random").Random(t)) for t in range(50)]
        for name in BACKEND_NAMES:
            backend = make_backend(name, netlist, "ecim")
            first = backend.run_trials(rows, model=model, fault_seeds=seeds)
            again = backend.run_trials(rows, model=model, fault_seeds=seeds)
            assert first.counts() == again.counts()
            assert np.array_equal(first.faults_injected, again.faults_injected)

    def test_protocol_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutionBackend()
