"""Tests for the Fig. 5 parity-update pipeline and Fig. 4 row interleaving."""

import pytest

from repro.core.pipeline import ParityUpdatePipeline, skewed_row_overlap
from repro.errors import ProtectionError


class TestParityUpdatePipeline:
    def test_schedule_contains_all_compute_and_parity_work(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=3, updates_per_gate=2, steps_per_update=2)
        schedule = pipeline.schedule_level(6)
        compute_slots = [s for s in schedule.slots if s.block == "compute"]
        parity_slots = [s for s in schedule.slots if s.block != "compute"]
        assert len(compute_slots) == 6
        assert len(parity_slots) == 6 * 2 * 2

    def test_no_block_conflicts(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=3, updates_per_gate=3, steps_per_update=2)
        schedule = pipeline.schedule_level(12)
        assert pipeline.verify_no_conflicts(schedule)

    def test_parity_work_starts_after_triggering_gate(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=2, updates_per_gate=1, steps_per_update=2)
        schedule = pipeline.schedule_level(4)
        for slot in schedule.slots:
            if slot.block != "compute":
                assert slot.step > slot.triggered_by

    def test_alternating_sides(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=2, updates_per_gate=1, steps_per_update=2)
        schedule = pipeline.schedule_level(4)
        sides_by_gate = {}
        for slot in schedule.slots:
            if slot.block == "compute":
                continue
            sides_by_gate.setdefault(slot.triggered_by, set()).add(slot.block.split("-")[0])
        assert sides_by_gate[0] == {"right"}
        assert sides_by_gate[1] == {"left"}

    def test_more_blocks_reduce_drain(self):
        shallow = ParityUpdatePipeline(blocks_per_side=1, updates_per_gate=4, steps_per_update=2)
        deep = ParityUpdatePipeline(blocks_per_side=4, updates_per_gate=4, steps_per_update=2)
        assert deep.unmasked_steps(32) < shallow.unmasked_steps(32)

    def test_sufficient_blocks_sustain_full_rate(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=4, updates_per_gate=4, steps_per_update=2)
        assert pipeline.sustains_full_rate(64)

    def test_insufficient_blocks_cannot_sustain_full_rate(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=1, updates_per_gate=4, steps_per_update=2)
        assert not pipeline.sustains_full_rate(64)

    def test_single_running_parity_bit_needs_only_one_block_pair(self):
        # The Section IV-C baseline: one running parity bit per side, 2-step
        # XOR per gate, alternating sides — one block per side keeps up.
        pipeline = ParityUpdatePipeline(blocks_per_side=1, updates_per_gate=1, steps_per_update=2)
        assert pipeline.sustains_full_rate(64)

    def test_empty_level(self):
        pipeline = ParityUpdatePipeline()
        schedule = pipeline.schedule_level(0)
        assert schedule.total_steps == 0
        assert schedule.drain_steps == 0

    def test_block_activity_accessors(self):
        pipeline = ParityUpdatePipeline(blocks_per_side=2, updates_per_gate=1, steps_per_update=2)
        schedule = pipeline.schedule_level(4)
        right_block = schedule.activity_of_block("right-0")
        assert right_block
        assert all(s.block == "right-0" for s in right_block)
        assert "compute" in schedule.busy_blocks_at(0)

    def test_invalid_parameters(self):
        with pytest.raises(ProtectionError):
            ParityUpdatePipeline(blocks_per_side=0)
        with pytest.raises(ProtectionError):
            ParityUpdatePipeline(updates_per_gate=0)
        with pytest.raises(ProtectionError):
            ParityUpdatePipeline(steps_per_update=0)
        with pytest.raises(ProtectionError):
            ParityUpdatePipeline().schedule_level(-1)


class TestSkewedRowOverlap:
    def test_single_row_hides_nothing(self):
        visible, hidden = skewed_row_overlap(1, compute_steps_per_level=100, rw_slots_per_level=6)
        assert visible == 6 and hidden == 0

    def test_enough_rows_hide_everything(self):
        visible, hidden = skewed_row_overlap(8, compute_steps_per_level=100, rw_slots_per_level=6)
        assert visible == 0 and hidden == 6

    def test_partial_hiding(self):
        visible, hidden = skewed_row_overlap(2, compute_steps_per_level=4, rw_slots_per_level=6)
        assert hidden == 4 and visible == 2

    def test_invalid_parameters(self):
        with pytest.raises(ProtectionError):
            skewed_row_overlap(0, 1, 1)
        with pytest.raises(ProtectionError):
            skewed_row_overlap(1, -1, 1)
