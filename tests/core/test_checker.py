"""Tests for the external Checker blocks (syndrome and majority vote)."""

import pytest

from repro.core.checker import CheckerCostModel, EcimChecker, TrimChecker
from repro.ecc.hamming import HAMMING_7_4, HammingCode
from repro.errors import CheckerError


class TestEcimChecker:
    @pytest.fixture
    def checker(self):
        return EcimChecker(HAMMING_7_4)

    def test_clean_level_passes(self, checker):
        data = [1, 0, 1, 1]
        parity = list(checker.reference_parity(data))
        result = checker.check_level(data, parity)
        assert not result.error_detected
        assert result.corrected_data == tuple(data)

    @pytest.mark.parametrize("position", range(4))
    def test_single_data_error_corrected(self, checker, position):
        data = [1, 0, 1, 1]
        parity = list(checker.reference_parity(data))
        corrupted = list(data)
        corrupted[position] ^= 1
        result = checker.check_level(corrupted, parity)
        assert result.error_corrected
        assert result.corrected_data == tuple(data)
        assert result.corrected_positions == (position,)

    def test_parity_error_does_not_touch_data(self, checker):
        data = [0, 1, 1, 0]
        parity = list(checker.reference_parity(data))
        parity[1] ^= 1
        result = checker.check_level(data, parity)
        assert result.error_detected
        assert result.corrected_data == tuple(data)
        assert result.corrected_positions == ()

    def test_short_levels_are_zero_padded(self):
        checker = EcimChecker(HammingCode(k=16))
        data = [1, 0, 1]  # fewer outputs than the code dimension
        parity = list(checker.reference_parity(data))
        corrupted = list(data)
        corrupted[2] ^= 1
        result = checker.check_level(corrupted, parity)
        assert result.corrected_data == tuple(data)

    def test_level_wider_than_code_rejected(self, checker):
        with pytest.raises(CheckerError):
            checker.check_level([0] * 10, [0, 0, 0])

    def test_wrong_parity_width_rejected(self, checker):
        with pytest.raises(CheckerError):
            checker.check_level([0, 0, 0, 0], [0, 0])

    def test_hardware_costs_positive_and_scale_with_code(self):
        small = EcimChecker(HAMMING_7_4)
        large = EcimChecker(HammingCode.from_codeword_length(255, 247))
        assert 0 < small.gate_count() < large.gate_count()
        assert 0 < small.area_um2() < large.area_um2()
        assert 0 < small.energy_per_check_fj() < large.energy_per_check_fj()
        assert small.latency_ns() < large.latency_ns()

    def test_checker_is_lightweight_relative_to_level_compute(self):
        # "ECiM Checkers therefore represent relatively light-weight hardware
        # blocks": one check must cost far less than the in-array gates it
        # protects (247 NORs at ~10 fJ each).
        checker = EcimChecker(HammingCode.from_codeword_length(255, 247))
        assert checker.energy_per_check_fj() < 247 * 10.5


class TestTrimChecker:
    @pytest.fixture
    def checker(self):
        return TrimChecker()

    def test_unanimous_copies_pass(self, checker):
        result = checker.check_level([[1, 0, 1]] * 3)
        assert not result.error_detected
        assert result.corrected_data == (1, 0, 1)

    def test_error_in_primary_corrected(self, checker):
        copies = [[1, 1, 1], [1, 0, 1], [1, 0, 1]]
        result = checker.check_level(copies)
        assert result.corrected_data == (1, 0, 1)
        assert result.corrected_positions == (1,)

    def test_error_in_redundant_copy_detected_without_correction(self, checker):
        copies = [[1, 0, 1], [1, 1, 1], [1, 0, 1]]
        result = checker.check_level(copies)
        assert result.error_detected
        assert result.corrected_positions == ()
        assert result.corrected_data == (1, 0, 1)

    def test_copy_count_must_match(self, checker):
        with pytest.raises(CheckerError):
            checker.check_level([[1, 0]] * 2)

    def test_copy_widths_must_match(self, checker):
        with pytest.raises(CheckerError):
            checker.check_level([[1, 0], [1], [1, 0]])

    def test_even_copy_count_rejected(self):
        with pytest.raises(CheckerError):
            TrimChecker(n_copies=4)

    def test_five_copy_voter(self):
        checker = TrimChecker(n_copies=5)
        copies = [[1, 0]] * 3 + [[0, 1]] * 2
        assert checker.check_level(copies).corrected_data == (1, 0)

    def test_hardware_costs(self, checker):
        assert checker.gate_count(width=256) > 0
        assert checker.area_um2(width=256) > 0
        assert checker.energy_per_check_fj(256) > 0
        assert checker.latency_ns() > 0

    def test_voter_cheaper_than_syndrome_checker_per_bit(self):
        # The TRiM checker is simpler hardware than the ECiM decoder.
        trim = TrimChecker()
        ecim = EcimChecker(HammingCode.from_codeword_length(255, 247))
        assert trim.gate_count(width=255) < ecim.gate_count()


class TestCostModel:
    def test_negative_costs_rejected(self):
        with pytest.raises(CheckerError):
            CheckerCostModel(energy_per_gate_event_fj=-1.0)

    def test_custom_costs_scale_energy(self):
        cheap = EcimChecker(HAMMING_7_4, CheckerCostModel(energy_per_gate_event_fj=0.5))
        expensive = EcimChecker(HAMMING_7_4, CheckerCostModel(energy_per_gate_event_fj=2.0))
        assert expensive.energy_per_check_fj() == pytest.approx(4 * cheap.energy_per_check_fj())
