"""Bit-packed engine tests: transposition properties, SoA lowering, word-op
gate semantics, and cross-backend byte-identity on ragged batches.

The systematic cross-backend grid lives in ``tests/differential/``; this
module owns the engine-local properties that grid cannot see — the
pack/unpack transposition contract (tail lanes of ragged batches, packed
XOR vs uint8 XOR), the SoA lowering invariants, and the legacy
skip-sampling stream discipline (reproducible, batch-composition-invariant,
statistically faithful).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.workloads import get_campaign_workload
from repro.core.backend import BitpackedBackend, derive_seed, make_backend
from repro.core.batched import compile_plan, sample_input_matrix
from repro.core.bitpacked import (
    WORD_BITS,
    _gate_words,
    lane_mask,
    n_words,
    pack_trials,
    run_packed,
    unpack_trials,
)
from repro.core.soa import (
    KIND_ECIM,
    KIND_GATE,
    KIND_PRESET,
    KIND_READ,
    KIND_TRIM,
    lower_plan,
)
from repro.errors import ProtectionError
from repro.pim.faults import FaultModel, FaultModelSpec
from repro.pim.vector import truth_table

OUTCOME_FIELDS = (
    "outputs_correct",
    "detected",
    "corrections",
    "uncorrectable_levels",
    "faults_injected",
)


def _assert_outcomes_equal(left, right, context):
    for field in OUTCOME_FIELDS:
        assert np.array_equal(getattr(left, field), getattr(right, field)), (
            context,
            field,
        )


# ---------------------------------------------------------------------- #
# Pack / unpack transposition properties
# ---------------------------------------------------------------------- #
class TestPackUnpack:
    @given(
        batch=st.integers(min_value=1, max_value=300),
        cols=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_over_ragged_batches(self, batch, cols, seed):
        bits = np.random.default_rng(seed).integers(
            0, 2, size=(batch, cols), dtype=np.uint8
        )
        planes = pack_trials(bits)
        assert planes.shape == (n_words(batch), cols)
        assert planes.dtype == np.uint64
        assert np.array_equal(unpack_trials(planes, batch), bits)

    @given(
        batch=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_tail_lanes_pack_to_zero(self, batch, seed):
        # Trials >= B must never contribute set bits: packed fault masks rely
        # on this to keep garbage tail lanes from leaking into outcomes.
        bits = np.random.default_rng(seed).integers(
            0, 2, size=(batch, 5), dtype=np.uint8
        )
        planes = pack_trials(bits)
        assert np.all(planes & ~lane_mask(batch)[:, None] == 0)

    def test_lane_mask_shape_and_tail(self):
        assert lane_mask(64).tolist() == [2**64 - 1]
        assert lane_mask(1).tolist() == [1]
        ragged = lane_mask(70)
        assert ragged.shape == (2,)
        assert ragged[0] == np.uint64(2**64 - 1)
        assert ragged[1] == np.uint64(0b111111)

    def test_trial_to_lane_mapping(self):
        # Trial t lives at bit (t & 63) of word (t >> 6), per column.
        batch = 130
        for trial in (0, 1, 63, 64, 127, 128, 129):
            bits = np.zeros((batch, 2), dtype=np.uint8)
            bits[trial, 1] = 1
            planes = pack_trials(bits)
            assert planes[trial >> 6, 1] == np.uint64(1) << np.uint64(trial & 63)
            assert planes[:, 0].sum() == 0

    @given(
        batch=st.integers(min_value=1, max_value=200),
        cols=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_xor_equals_uint8_xor(self, batch, cols, seed):
        # Applying a fault mask in the packed domain must be the same
        # operation as the uint8 engine's `state ^= mask`.
        rng = np.random.default_rng(seed)
        state = rng.integers(0, 2, size=(batch, cols), dtype=np.uint8)
        mask = rng.integers(0, 2, size=(batch, cols), dtype=np.uint8)
        packed = pack_trials(state)
        packed ^= pack_trials(mask)
        assert np.array_equal(unpack_trials(packed, batch), state ^ mask)

    def test_pack_rejects_non_matrix(self):
        with pytest.raises(ProtectionError):
            pack_trials(np.zeros(4, dtype=np.uint8))

    def test_unpack_rejects_oversized_batch(self):
        with pytest.raises(ProtectionError):
            unpack_trials(np.zeros((1, 3), dtype=np.uint64), 65)


# ---------------------------------------------------------------------- #
# Word-op gate programs
# ---------------------------------------------------------------------- #
class TestGateWordPrograms:
    @pytest.mark.parametrize("gate", ["nor", "nand", "maj", "thr"])
    @pytest.mark.parametrize("n_inputs", [2, 3, 4])
    def test_word_programs_match_truth_tables(self, gate, n_inputs):
        if gate == "maj" and n_inputs % 2 == 0:
            pytest.skip("majority needs an odd fan-in")
        if gate == "thr" and n_inputs < 3:
            pytest.skip("the default THR threshold of 3 needs fan-in >= 3")
        table = truth_table(gate, n_inputs, 3 if gate == "thr" else None)
        # All input combinations at once, one trial per combination.
        combos = np.array(
            [[(i >> j) & 1 for j in range(n_inputs)] for i in range(1 << n_inputs)],
            dtype=np.uint8,
        )
        operands = pack_trials(combos)
        out = _gate_words(gate, operands, None)
        got = unpack_trials(out[:, None], combos.shape[0])[:, 0]
        assert np.array_equal(got, table)

    @pytest.mark.parametrize("gate", ["not", "copy"])
    def test_unary_programs(self, gate):
        bits = np.array([[0], [1], [1], [0]], dtype=np.uint8)
        out = _gate_words(gate, pack_trials(bits), None)
        got = unpack_trials(out[:, None], 4)[:, 0]
        expected = bits[:, 0] if gate == "copy" else 1 - bits[:, 0]
        assert np.array_equal(got, expected)


# ---------------------------------------------------------------------- #
# SoA lowering invariants
# ---------------------------------------------------------------------- #
class TestSoaLowering:
    @pytest.fixture(scope="class", params=["ecim", "trim"])
    def soa(self, request):
        netlist = get_campaign_workload("dot2").netlist
        return lower_plan(compile_plan(netlist, request.param))

    def test_dispatch_covers_every_step(self, soa):
        assert soa.n_steps == len(soa.plan.steps)
        kinds = set(soa.step_kind.tolist())
        assert kinds <= {KIND_GATE, KIND_PRESET, KIND_READ, KIND_ECIM, KIND_TRIM}
        # Slots are dense per kind: the last slot of each kind indexes its
        # tape's final entry.
        assert soa.n_gate_steps == int((soa.step_kind == KIND_GATE).sum())

    def test_gate_tape_mirrors_plan_steps(self, soa):
        from repro.core.batched import GateStep

        gate_steps = [s for s in soa.plan.steps if isinstance(s, GateStep)]
        assert soa.n_gate_steps == len(gate_steps)
        for slot, step in enumerate(gate_steps):
            assert np.array_equal(
                soa.gate_in_cols[soa.gate_in_ptr[slot]:soa.gate_in_ptr[slot + 1]],
                step.input_cols,
            )
            assert np.array_equal(
                soa.gate_out_cols[soa.gate_out_ptr[slot]:soa.gate_out_ptr[slot + 1]],
                step.output_cols,
            )
            assert soa.gate_op_index[slot] == step.op_index
            assert soa.gate_is_metadata[slot] == step.is_metadata
            table = soa.tables[soa.gate_table_id[slot]]
            assert table[0] == step.gate
            assert table[1] == step.input_cols.shape[0]

    def test_tables_are_deduplicated(self, soa):
        assert len(soa.tables) == len(set(soa.tables))
        assert len(soa.tables) < soa.n_gate_steps  # real plans repeat gates

    def test_site_tables_partition_gate_outputs(self, soa):
        total_outputs = int(soa.gate_out_ptr[-1])
        assert soa.n_gate_output_sites == total_outputs
        assert (
            soa.gate_site_step.shape[0] + soa.meta_site_step.shape[0]
            == total_outputs
        )
        assert soa.preset_site_step.shape[0] == int(soa.preset_ptr[-1])
        assert soa.read_site_step.shape[0] == int(soa.read_ptr[-1])

    def test_buffers_are_frozen(self, soa):
        with pytest.raises(ValueError):
            soa.step_kind[0] = 0
        with pytest.raises(ValueError):
            soa.gate_out_cols[0] = 0


# ---------------------------------------------------------------------- #
# Engine byte-identity on ragged batches
# ---------------------------------------------------------------------- #
class TestRaggedBatchParity:
    """The differential grid runs B=16; these pin the word-boundary batch
    sizes (B % 64 == 0, == 1, and mid-word) against the uint8 engine."""

    @pytest.fixture(scope="class")
    def backends(self):
        netlist = get_campaign_workload("dot2").netlist
        return (
            make_backend("batched", netlist, "ecim"),
            make_backend("bitpacked", netlist, "ecim"),
        )

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 128, 130])
    def test_declarative_stochastic_byte_identical(self, backends, batch):
        batched, bitpacked = backends
        seeds = [derive_seed("ragged", trial, "faults") for trial in range(batch)]
        matrix = sample_input_matrix(batched.netlist, seeds)
        spec = FaultModelSpec.stochastic(
            gate_error_rate=0.03, memory_error_rate=0.01, preset_error_rate=0.01
        )
        _assert_outcomes_equal(
            batched.run_trials(matrix, fault_model=spec, fault_seeds=seeds),
            bitpacked.run_trials(matrix, fault_model=spec, fault_seeds=seeds),
            batch,
        )

    @pytest.mark.parametrize("batch", [63, 64, 65])
    def test_burst_byte_identical(self, backends, batch):
        batched, bitpacked = backends
        seeds = [derive_seed("ragged-burst", trial) for trial in range(batch)]
        matrix = sample_input_matrix(batched.netlist, seeds)
        spec = FaultModelSpec.burst(
            burst_length=3, correlation_window=6, gate_error_rate=0.02,
            memory_error_rate=0.01,
        )
        _assert_outcomes_equal(
            batched.run_trials(matrix, fault_model=spec, fault_seeds=seeds),
            bitpacked.run_trials(matrix, fault_model=spec, fault_seeds=seeds),
            batch,
        )

    def test_kflip_plans_byte_identical_across_all_backends(self, backends):
        import random

        batched, bitpacked = backends
        batch = 70
        seeds = [derive_seed("ragged-plan", trial) for trial in range(batch)]
        matrix = sample_input_matrix(batched.netlist, seeds)
        sites = batched.plan.gate_fault_sites()
        plans = []
        for seed in seeds:
            entry = {}
            for op, pos in random.Random(seed).sample(sites, 2):
                entry.setdefault(op, []).append(pos)
            plans.append(entry)
        _assert_outcomes_equal(
            batched.run_trials(matrix, fault_plan=plans),
            bitpacked.run_trials(matrix, fault_plan=plans),
            "plan",
        )


# ---------------------------------------------------------------------- #
# Legacy skip-sampled stream discipline
# ---------------------------------------------------------------------- #
class TestLegacyStreams:
    @pytest.fixture(scope="class")
    def backend(self):
        netlist = get_campaign_workload("dot2").netlist
        return make_backend("bitpacked", netlist, "ecim")

    def test_reproducible_for_fixed_seeds(self, backend):
        seeds = [derive_seed("legacy", t, "faults") for t in range(100)]
        matrix = sample_input_matrix(backend.netlist, seeds)
        model = FaultModel(gate_error_rate=2e-3, memory_error_rate=1e-3)
        first = backend.run_trials(matrix, model=model, fault_seeds=seeds)
        again = backend.run_trials(matrix, model=model, fault_seeds=seeds)
        _assert_outcomes_equal(first, again, "repro")

    def test_batch_composition_invariance(self, backend):
        # A trial's outcome depends only on its own seeds, never on shard
        # size or neighbours — the property that makes sharded campaigns
        # placement-independent.
        seeds = [derive_seed("legacy-invar", t, "faults") for t in range(130)]
        matrix = sample_input_matrix(backend.netlist, seeds)
        model = FaultModel(gate_error_rate=5e-3, memory_error_rate=1e-3)
        whole = backend.run_trials(matrix, model=model, fault_seeds=seeds)
        for lo, hi in ((0, 1), (17, 18), (60, 70), (100, 130)):
            part = backend.run_trials(
                matrix[lo:hi], model=model, fault_seeds=seeds[lo:hi]
            )
            for field in OUTCOME_FIELDS:
                assert np.array_equal(
                    getattr(part, field), getattr(whole, field)[lo:hi]
                ), (lo, hi, field)

    def test_fault_rate_statistically_faithful(self, backend):
        # Skip sampling must hit each site i.i.d. at the class rate: mean
        # fault count over many trials lands near sites x rate (within 5
        # sigma of the binomial).
        rate = 1e-3
        trials = 4000
        seeds = [derive_seed("legacy-stats", t, "faults") for t in range(trials)]
        matrix = sample_input_matrix(backend.netlist, seeds)
        outcomes = backend.run_trials(
            matrix, model=FaultModel(gate_error_rate=rate), fault_seeds=seeds
        )
        # metadata_error_rate falls back to the gate rate, so every gate
        # output (metadata included) is a site at this rate.
        sites = backend.soa.n_gate_output_sites
        expected = trials * sites * rate
        sigma = (trials * sites * rate * (1 - rate)) ** 0.5
        observed = int(outcomes.faults_injected.sum())
        assert abs(observed - expected) < 5 * sigma, (observed, expected)

    def test_rate_one_hits_every_site(self, backend):
        seeds = [derive_seed("legacy-sat", t) for t in range(3)]
        matrix = sample_input_matrix(backend.netlist, seeds)
        outcomes = backend.run_trials(
            matrix, model=FaultModel(gate_error_rate=1.0), fault_seeds=seeds
        )
        # Gate and (fallback-rate) metadata outputs all flip, every trial.
        assert np.all(outcomes.faults_injected == backend.soa.n_gate_output_sites)


# ---------------------------------------------------------------------- #
# Backend surface
# ---------------------------------------------------------------------- #
class TestBitpackedBackendSurface:
    def test_make_backend_dispatch_and_lazy_soa(self):
        netlist = get_campaign_workload("and2").netlist
        backend = make_backend("bitpacked", netlist, "ecim")
        assert isinstance(backend, BitpackedBackend)
        assert backend._soa is None  # lowered lazily
        assert backend.soa.plan is backend.plan
        assert backend._soa is not None

    def test_sites_identical_to_batched(self):
        netlist = get_campaign_workload("dot2").netlist
        batched = make_backend("batched", netlist, "trim")
        bitpacked = make_backend("bitpacked", netlist, "trim")
        assert batched.enumerate_sites() == bitpacked.enumerate_sites()

    def test_run_packed_rejects_bad_matrix(self):
        netlist = get_campaign_workload("and2").netlist
        soa = lower_plan(compile_plan(netlist, "ecim"))
        with pytest.raises(ProtectionError):
            run_packed(soa, np.zeros((4, 99), dtype=np.uint8))
        with pytest.raises(ProtectionError):
            run_packed(soa, np.zeros((0, soa.n_inputs), dtype=np.uint8))

    def test_word_bits_is_sixty_four(self):
        assert WORD_BITS == 64
        assert n_words(1) == 1
        assert n_words(64) == 1
        assert n_words(65) == 2
