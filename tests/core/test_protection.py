"""Tests for the analytic protection-scheme models (ECiM, TRiM, unprotected)."""

import pytest

from repro.core.protection import (
    EcimScheme,
    LevelProfile,
    TrimScheme,
    UnprotectedScheme,
)
from repro.ecc.bch import BchCode
from repro.ecc.hamming import HAMMING_7_4
from repro.errors import CoverageError, ProtectionError

LEVEL = LevelProfile(n_nor_gates=20, n_thr_gates=4)


class TestLevelProfile:
    def test_gate_totals(self):
        assert LEVEL.n_gates == 24
        assert LEVEL.output_bits == 24

    def test_explicit_output_count(self):
        profile = LevelProfile(n_nor_gates=10, n_thr_gates=0, n_outputs=6)
        assert profile.output_bits == 6

    def test_negative_counts_rejected(self):
        with pytest.raises(ProtectionError):
            LevelProfile(n_nor_gates=-1)


class TestUnprotectedScheme:
    def test_no_metadata(self):
        scheme = UnprotectedScheme()
        counts = scheme.level_metadata(LEVEL)
        assert counts.metadata_gates == 0
        assert counts.checker_read_bits == 0
        assert scheme.metadata_column_fraction() == 0.0
        assert not scheme.guarantees_sep()
        assert scheme.correctable_errors_per_level() == 0


class TestEcimScheme:
    @pytest.fixture
    def scheme(self):
        return EcimScheme()

    def test_default_code_is_hamming_255_247(self, scheme):
        assert scheme.code.n == 255
        assert scheme.code.k == 247

    def test_guarantees_sep(self, scheme):
        assert scheme.guarantees_sep()
        assert scheme.correctable_errors_per_level() == 1

    def test_metadata_column_fraction_small(self, scheme):
        # Parity + staging columns are a few percent of the row, far below
        # TRiM's 200 %.
        assert 0.0 < scheme.metadata_column_fraction() < 0.2

    def test_metadata_gates_scale_with_parity_fanout(self, scheme):
        counts = scheme.level_metadata(LEVEL, multi_output=True)
        updates = round(scheme.average_parity_updates * LEVEL.n_gates)
        assert counts.metadata_nor_gates == updates
        assert counts.metadata_thr_gates == updates
        assert counts.metadata_gate_outputs == 4 * updates

    def test_single_output_costs_more_than_multi_output(self, scheme):
        multi = scheme.level_metadata(LEVEL, multi_output=True)
        single = scheme.level_metadata(LEVEL, multi_output=False)
        assert single.metadata_gates > multi.metadata_gates
        assert single.metadata_gate_outputs >= multi.metadata_gate_outputs

    def test_checker_reads_include_parity_bits(self, scheme):
        counts = scheme.level_metadata(LEVEL)
        assert counts.checker_read_bits == LEVEL.output_bits + scheme.code.n_parity

    def test_unmaskable_drain_shrinks_with_more_parity_blocks(self):
        shallow = EcimScheme(parity_blocks_per_side=1).level_metadata(LEVEL)
        deep = EcimScheme(parity_blocks_per_side=4).level_metadata(LEVEL)
        assert deep.unmaskable_steps <= shallow.unmaskable_steps

    def test_smaller_code_has_higher_column_fraction(self):
        small = EcimScheme(code=HAMMING_7_4)
        assert small.metadata_column_fraction() > EcimScheme().metadata_column_fraction()

    def test_bch_code_increases_metadata(self):
        hamming = EcimScheme()
        bch = EcimScheme(code=BchCode(255, 3))
        assert bch.correctable_errors_per_level() == 3
        assert (
            bch.level_metadata(LEVEL).metadata_gates
            > hamming.level_metadata(LEVEL).metadata_gates
        )

    def test_checker_energy_positive(self, scheme):
        assert scheme.level_metadata(LEVEL).checker_energy_fj > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ProtectionError):
            EcimScheme(parity_blocks_per_side=0)
        with pytest.raises(ProtectionError):
            EcimScheme(correction_write_probability=2.0)

    def test_describe_mentions_granularities(self, scheme):
        text = scheme.describe()
        assert "gate" in text and "logic-level" in text


class TestTrimScheme:
    @pytest.fixture
    def scheme(self):
        return TrimScheme()

    def test_guarantees_sep(self, scheme):
        assert scheme.guarantees_sep()
        assert scheme.correctable_errors_per_level() == 1

    def test_column_fraction_is_two(self, scheme):
        assert scheme.metadata_column_fraction() == pytest.approx(2.0)

    def test_multi_output_needs_no_extra_firings(self, scheme):
        counts = scheme.level_metadata(LEVEL, multi_output=True)
        assert counts.metadata_gates == 0
        assert counts.metadata_gate_outputs == 2 * LEVEL.n_gates
        assert counts.unmaskable_steps == 0

    def test_single_output_needs_staging_and_refirings(self, scheme):
        counts = scheme.level_metadata(LEVEL, multi_output=False)
        assert counts.metadata_gates > 0
        assert counts.metadata_thr_gates == 2 * LEVEL.n_thr_gates
        assert counts.unmaskable_steps > 0

    def test_checker_reads_are_three_copies(self, scheme):
        assert scheme.level_metadata(LEVEL).checker_read_bits == 3 * LEVEL.output_bits

    def test_five_copy_variant(self):
        scheme = TrimScheme(n_copies=5)
        assert scheme.correctable_errors_per_level() == 2
        assert scheme.metadata_column_fraction() == pytest.approx(4.0)
        assert scheme.level_metadata(LEVEL).checker_read_bits == 5 * LEVEL.output_bits

    def test_even_copy_count_rejected(self):
        with pytest.raises(CoverageError):
            TrimScheme(n_copies=2)

    def test_invalid_probability(self):
        with pytest.raises(ProtectionError):
            TrimScheme(correction_write_probability=-0.1)


class TestSchemeComparison:
    def test_ecim_metadata_columns_much_smaller_than_trim(self):
        assert EcimScheme().metadata_column_fraction() < 0.1 * TrimScheme().metadata_column_fraction()

    def test_trim_transfers_more_than_ecim(self):
        ecim = EcimScheme().level_metadata(LEVEL)
        trim = TrimScheme().level_metadata(LEVEL)
        assert trim.checker_read_bits > ecim.checker_read_bits

    def test_ecim_fires_more_metadata_gates_than_trim(self):
        ecim = EcimScheme().level_metadata(LEVEL, multi_output=True)
        trim = TrimScheme().level_metadata(LEVEL, multi_output=True)
        assert ecim.metadata_gates > trim.metadata_gates
