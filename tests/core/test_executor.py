"""Tests for the bit-exact executors (unprotected, ECiM, TRiM)."""

import pytest

from repro.compiler.netlist import Netlist
from repro.compiler.synthesis import CircuitBuilder
from repro.core.executor import EcimExecutor, TrimExecutor, UnprotectedExecutor
from repro.core.sep import and_gate_example_netlist
from repro.errors import ProtectionError
from repro.pim.array import PimArray
from repro.pim.faults import DeterministicFaultInjector, FaultModel, StochasticFaultInjector
from repro.pim.operations import OperationKind
from repro.pim.technology import RERAM


def adder_netlist(width=3):
    builder = CircuitBuilder()
    a = builder.input_word(width, "a")
    b = builder.input_word(width, "b")
    total, carry = builder.ripple_adder(a, b)
    builder.mark_output_word(total)
    builder.mark_output_bit(carry, "carry")
    return builder.netlist, a, b, total, carry


def adder_inputs(a_sigs, b_sigs, a_val, b_val):
    values = {s: (a_val >> i) & 1 for i, s in enumerate(a_sigs)}
    values.update({s: (b_val >> i) & 1 for i, s in enumerate(b_sigs)})
    return values


def word_value(outputs, word):
    return sum(outputs[s] << i for i, s in enumerate(word))


class TestUnprotectedExecutor:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 7), (6, 1)])
    def test_adder_matches_golden_model(self, a, b):
        netlist, a_sigs, b_sigs, total, carry = adder_netlist()
        report = UnprotectedExecutor(netlist).run(adder_inputs(a_sigs, b_sigs, a, b))
        assert report.outputs_correct
        assert word_value(report.outputs, total) + (report.outputs[carry] << 3) == a + b

    def test_no_checker_activity(self):
        netlist = and_gate_example_netlist()
        executor = UnprotectedExecutor(netlist)
        report = executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 0})
        assert report.checks == []
        assert executor.array.trace.count(OperationKind.READ) == 0

    def test_single_fault_corrupts_output(self):
        netlist = and_gate_example_netlist()
        injector = DeterministicFaultInjector(target_operations={2: 1})
        executor = UnprotectedExecutor(and_gate_example_netlist(), fault_injector=injector)
        report = executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 1})
        assert not report.outputs_correct

    def test_uses_supplied_array(self):
        netlist = and_gate_example_netlist()
        array = PimArray(rows=2, cols=64, technology=RERAM)
        executor = UnprotectedExecutor(netlist, array=array)
        assert executor.array is array

    def test_rejects_too_narrow_array(self):
        netlist, *_ = adder_netlist()
        with pytest.raises(ProtectionError):
            UnprotectedExecutor(netlist, array=PimArray(rows=2, cols=4))

    def test_missing_input_rejected(self):
        netlist = and_gate_example_netlist()
        with pytest.raises(ProtectionError):
            UnprotectedExecutor(netlist).run({netlist.inputs[0]: 1})


class TestEcimExecutor:
    @pytest.mark.parametrize("a,b", [(0, 0), (5, 2), (7, 6)])
    def test_error_free_execution_is_correct(self, a, b):
        netlist, a_sigs, b_sigs, *_ = adder_netlist()
        report = EcimExecutor(netlist).run(adder_inputs(a_sigs, b_sigs, a, b))
        assert report.outputs_correct
        assert report.corrections == 0
        assert report.uncorrectable_levels == 0

    def test_checks_happen_per_logic_level(self):
        netlist, a_sigs, b_sigs, *_ = adder_netlist(width=2)
        executor = EcimExecutor(netlist)
        report = executor.run(adder_inputs(a_sigs, b_sigs, 1, 2))
        assert len(report.checks) == netlist.depth

    def test_checker_transfers_recorded(self):
        netlist = and_gate_example_netlist()
        executor = EcimExecutor(netlist)
        executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 1})
        # Two reads per level (data + parity), two levels.
        assert executor.array.trace.count(OperationKind.READ) == 4

    def test_metadata_operations_flagged(self):
        netlist = and_gate_example_netlist()
        executor = EcimExecutor(netlist)
        executor.run({netlist.inputs[0]: 0, netlist.inputs[1]: 1})
        assert executor.array.trace.count(OperationKind.GATE, metadata_only=True) > 0

    def test_data_fault_corrected_and_counted(self):
        netlist = and_gate_example_netlist()
        injector = DeterministicFaultInjector(target_operations={0: 1})
        executor = EcimExecutor(and_gate_example_netlist(), fault_injector=injector)
        report = executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 1})
        assert report.outputs_correct
        assert report.corrections >= 1
        assert report.errors_detected >= 1

    def test_single_output_variant_still_correct(self):
        netlist, a_sigs, b_sigs, *_ = adder_netlist(width=2)
        report = EcimExecutor(netlist, multi_output=False).run(
            adder_inputs(a_sigs, b_sigs, 3, 1)
        )
        assert report.outputs_correct

    def test_single_output_variant_corrects_faults(self):
        netlist = and_gate_example_netlist()
        injector = DeterministicFaultInjector(target_operations={0: 1})
        executor = EcimExecutor(
            and_gate_example_netlist(), multi_output=False, fault_injector=injector
        )
        report = executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 1})
        assert report.outputs_correct

    def test_low_stochastic_error_rate_survivable(self):
        netlist, a_sigs, b_sigs, *_ = adder_netlist(width=2)
        injector = StochasticFaultInjector(FaultModel(gate_error_rate=0.002), seed=11)
        report = EcimExecutor(netlist, fault_injector=injector).run(
            adder_inputs(a_sigs, b_sigs, 2, 3)
        )
        # With at most a couple of injected faults spread across levels the
        # per-level Hamming correction keeps the result intact.
        if injector.log.count() <= 1:
            assert report.outputs_correct


class TestTrimExecutor:
    @pytest.mark.parametrize("a,b", [(1, 1), (4, 3), (7, 7)])
    def test_error_free_execution_is_correct(self, a, b):
        netlist, a_sigs, b_sigs, *_ = adder_netlist()
        report = TrimExecutor(netlist).run(adder_inputs(a_sigs, b_sigs, a, b))
        assert report.outputs_correct

    def test_primary_fault_outvoted(self):
        netlist = and_gate_example_netlist()
        injector = DeterministicFaultInjector(target_output_positions={0: 0})
        executor = TrimExecutor(and_gate_example_netlist(), fault_injector=injector)
        report = executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 1})
        assert report.outputs_correct
        assert report.corrections >= 1

    def test_copy_fault_detected_but_harmless(self):
        netlist = and_gate_example_netlist()
        injector = DeterministicFaultInjector(target_output_positions={0: 1})
        executor = TrimExecutor(and_gate_example_netlist(), fault_injector=injector)
        report = executor.run({netlist.inputs[0]: 1, netlist.inputs[1]: 1})
        assert report.outputs_correct
        assert report.errors_detected >= 1

    def test_three_reads_per_level(self):
        netlist = and_gate_example_netlist()
        executor = TrimExecutor(netlist)
        executor.run({netlist.inputs[0]: 0, netlist.inputs[1]: 0})
        assert executor.array.trace.count(OperationKind.READ) == 3 * netlist.depth

    def test_single_output_variant(self):
        netlist, a_sigs, b_sigs, *_ = adder_netlist(width=2)
        report = TrimExecutor(netlist, multi_output=False).run(
            adder_inputs(a_sigs, b_sigs, 1, 3)
        )
        assert report.outputs_correct

    def test_even_copy_count_rejected(self):
        netlist = and_gate_example_netlist()
        with pytest.raises(ProtectionError):
            TrimExecutor(netlist, n_copies=2)

    def test_single_output_copies_honour_gate_threshold(self):
        # Regression: the single-output path used to re-fire copies without
        # forwarding node.threshold, so a THR(threshold=2) gate's copies were
        # evaluated at the default threshold 3, disagreed systematically, and
        # the majority vote wrote the wrong value back on fault-free runs.
        from repro.compiler.netlist import Netlist
        from repro.pim.gates import GateType

        netlist = Netlist("thr2")
        a, b, c = netlist.add_inputs(3)
        out = netlist.add_gate(GateType.THR, [a, b, c], threshold=2)
        netlist.mark_output(out)
        # Exactly two zeros: fires at threshold 2, not at threshold 3.
        inputs = {a: 0, b: 0, c: 1}
        report = TrimExecutor(netlist, multi_output=False).run(inputs)
        assert report.outputs_correct
        assert report.errors_detected == 0


class TestCrossSchemeConsistency:
    def test_all_executors_agree_with_golden_model(self):
        netlist, a_sigs, b_sigs, total, carry = adder_netlist(width=2)
        inputs = adder_inputs(a_sigs, b_sigs, 2, 3)
        golden = netlist.evaluate_outputs(inputs)
        for executor_cls in (UnprotectedExecutor, EcimExecutor, TrimExecutor):
            report = executor_cls(netlist).run(dict(inputs))
            assert report.outputs == golden, executor_cls.__name__

    def test_protection_costs_extra_operations(self):
        netlist = and_gate_example_netlist()
        inputs = {netlist.inputs[0]: 1, netlist.inputs[1]: 0}
        unprotected = UnprotectedExecutor(and_gate_example_netlist())
        unprotected.run(dict(inputs))
        ecim = EcimExecutor(and_gate_example_netlist())
        ecim.run(dict(inputs))
        assert len(ecim.array.trace) > len(unprotected.array.trace)


class TestExecutorReset:
    """The reset()/reuse fast path: repeated trials without rebuilding layout."""

    def executor(self):
        return EcimExecutor(and_gate_example_netlist())

    def inputs(self, netlist):
        return {netlist.inputs[0]: 1, netlist.inputs[1]: 1}

    def test_reset_rewinds_trace_and_operation_index(self):
        executor = self.executor()
        executor.run(self.inputs(executor.netlist))
        assert len(executor.array.trace) > 0
        assert executor.array.operation_index > 0
        executor.reset()
        assert len(executor.array.trace) == 0
        assert executor.array.operation_index == 0

    def test_repeated_runs_with_reset_are_identical(self):
        executor = self.executor()
        inputs = self.inputs(executor.netlist)
        first = executor.run(inputs)
        trace_size = len(executor.array.trace)
        executor.reset()
        second = executor.run(inputs)
        assert second.outputs == first.outputs
        assert len(executor.array.trace) == trace_size  # no leak across runs

    def test_without_reset_operation_index_drifts(self):
        # The leakage reset exists to fix: operation-indexed injectors would
        # target different sites on a second back-to-back run.
        executor = self.executor()
        inputs = self.inputs(executor.netlist)
        executor.run(inputs)
        drifted = executor.array.operation_index
        executor.run(inputs)
        assert executor.array.operation_index == 2 * drifted

    def test_reset_swaps_fault_injector(self):
        executor = self.executor()
        inputs = self.inputs(executor.netlist)
        executor.reset(
            fault_injector=StochasticFaultInjector(FaultModel(gate_error_rate=1.0), seed=0)
        )
        faulty = executor.run(inputs)
        assert any(check.error_detected for check in faulty.checks)
        from repro.pim.faults import NoFaultInjector

        executor.reset(fault_injector=NoFaultInjector())
        clean = executor.run(inputs)
        assert clean.outputs == clean.golden_outputs
        assert clean.errors_detected == 0

    def test_reset_reproduces_seeded_fault_stream(self):
        executor = self.executor()
        inputs = self.inputs(executor.netlist)
        reports = []
        sites = []
        for _ in range(2):
            injector = StochasticFaultInjector(FaultModel(gate_error_rate=0.2), seed=99)
            executor.reset(fault_injector=injector)
            reports.append(executor.run(inputs))
            sites.append(injector.log.sites())
        assert reports[0].outputs == reports[1].outputs
        assert sites[0] == sites[1]

    def test_deterministic_injector_lines_up_after_reset(self):
        executor = self.executor()
        inputs = self.inputs(executor.netlist)
        outcomes = []
        for _ in range(2):
            injector = DeterministicFaultInjector(target_operations={0: 1})
            executor.reset(fault_injector=injector)
            executor.run(inputs)
            assert injector.exhausted
            outcomes.append(injector.log.sites())
        assert outcomes[0] == outcomes[1]

    def test_reset_works_across_all_executors(self):
        netlist = and_gate_example_netlist()
        inputs = self.inputs(netlist)
        for cls in (UnprotectedExecutor, EcimExecutor, TrimExecutor):
            executor = cls(netlist)
            first = executor.run(inputs)
            executor.reset()
            second = executor.run(inputs)
            assert first.outputs == second.outputs == first.golden_outputs
