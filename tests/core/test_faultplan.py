"""Array-native fault plans (``repro.core.faultplan``): combination
unranking order, the CSR/dict bridge, engine lowering equivalence, and the
broadcast-input fast path (ISSUE 8)."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.workloads import get_campaign_workload
from repro.core.backend import BACKEND_NAMES, make_backend
from repro.core.batched import _deterministic_targets
from repro.core.faultplan import (
    FaultPlanArrays,
    combination_count,
    unrank_combinations,
)
from repro.errors import ProtectionError

AND2 = get_campaign_workload("and2").netlist
AND2_INPUTS = {signal: 1 for signal in AND2.inputs}


class TestUnranking:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(min_value=1, max_value=20), k=st.integers(min_value=1, max_value=4))
    def test_reproduces_itertools_combinations_order(self, n, k):
        """The ISSUE's pinned property: for all n <= 20, k <= 4, unranking
        the full rank range reproduces itertools.combinations exactly."""
        if k > n:
            k = n
        total = combination_count(n, k)
        matrix = unrank_combinations(n, k, np.arange(total, dtype=np.int64))
        expected = np.array(list(combinations(range(n), k)), dtype=np.int64)
        assert np.array_equal(matrix, expected.reshape(total, k))

    def test_addresses_any_rank_range_without_predecessors(self):
        """Unranking an arbitrary slice equals slicing the full enumeration —
        the property that makes sweep shards placement-independent."""
        full = np.array(list(combinations(range(12), 3)), dtype=np.int64)
        ranks = np.arange(57, 101, dtype=np.int64)
        assert np.array_equal(unrank_combinations(12, 3, ranks), full[57:101])

    def test_rank_bounds_are_validated(self):
        with pytest.raises(ProtectionError):
            unrank_combinations(5, 2, np.array([-1]))
        with pytest.raises(ProtectionError):
            unrank_combinations(5, 2, np.array([combination_count(5, 2)]))

    def test_k_must_fit(self):
        with pytest.raises(ProtectionError):
            unrank_combinations(3, 4, np.array([0]))
        with pytest.raises(ProtectionError):
            unrank_combinations(3, 0, np.array([0]))

    def test_overflow_guard(self):
        # C(200, 100) dwarfs int64; the guard must fail loudly, not wrap.
        with pytest.raises(ProtectionError):
            combination_count(200, 100)


class TestFaultPlanArrays:
    def test_dict_round_trip_normalises_like_the_engines(self):
        plans = [{0: 1}, {}, {2: (0, 1), 5: 3}, {1: [2, 2, 0]}]
        arrays = FaultPlanArrays.from_dicts(plans)
        assert len(arrays) == 4
        assert arrays.to_dicts() == [
            {0: (1,)},
            {},
            {2: (0, 1), 5: (3,)},
            {1: (0, 2)},  # deduplicated and sorted, one flip per site
        ]

    def test_targets_by_op_matches_dict_grouping(self):
        plans = [{0: (0, 2)}, {3: 1}, {0: 1, 3: (0,)}, {}]
        arrays = FaultPlanArrays.from_dicts(plans)
        from_dicts = _deterministic_targets(plans)
        from_arrays = _deterministic_targets(arrays)
        assert set(from_dicts) == set(from_arrays)
        for op in from_dicts:
            pairs = sorted(zip(*map(list, from_dicts[op])))
            assert sorted(zip(*map(list, from_arrays[op]))) == pairs

    def test_from_site_matrix_is_csr_of_the_site_tables(self):
        site_ops = np.array([7, 7, 9], dtype=np.int64)
        site_positions = np.array([0, 1, 0], dtype=np.int64)
        matrix = np.array([[0, 2], [1, 2]])
        arrays = FaultPlanArrays.from_site_matrix(matrix, site_ops, site_positions)
        assert arrays.to_dicts() == [{7: (0,), 9: (0,)}, {7: (1,), 9: (0,)}]

    def test_csr_invariants_are_validated(self):
        with pytest.raises(ProtectionError):
            FaultPlanArrays(
                trial_ptr=np.array([0, 2, 1]),
                op_index=np.array([0, 0]),
                position=np.array([0, 1]),
            )
        with pytest.raises(ProtectionError):
            FaultPlanArrays(
                trial_ptr=np.array([0, 3]),
                op_index=np.array([0]),
                position=np.array([0]),
            )

    def test_getitem_bounds(self):
        arrays = FaultPlanArrays.from_dicts([{0: 0}])
        with pytest.raises(IndexError):
            arrays[1]


class TestBackendAcceptance:
    """Every registered backend consumes the CSR form directly."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_array_plan_equals_dict_plan(self, name):
        backend = make_backend(name, AND2, "ecim")
        sites = backend.enumerate_sites(AND2_INPUTS)
        plans = [
            {sites[i].operation_index: sites[i].output_position}
            for i in range(len(sites))
        ]
        arrays = FaultPlanArrays.from_dicts(plans)
        from_dicts = backend.run_trials([AND2_INPUTS] * len(sites), fault_plan=plans)
        from_arrays = backend.run_trials(
            [AND2_INPUTS] * len(sites), fault_plan=arrays
        )
        for field in (
            "outputs_correct",
            "detected",
            "corrections",
            "uncorrectable_levels",
            "faults_injected",
        ):
            assert np.array_equal(
                getattr(from_dicts, field), getattr(from_arrays, field)
            ), field

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_unknown_op_and_bad_position_inject_nothing(self, name):
        """The dict path's forgiveness contract carries over: out-of-range
        operations and positions silently inject no faults."""
        backend = make_backend(name, AND2, "ecim")
        arrays = FaultPlanArrays.from_dicts([{10_000: 0}, {0: 10_000}, {-3: 0}])
        outcomes = backend.run_trials([AND2_INPUTS] * 3, fault_plan=arrays)
        assert outcomes.faults_injected.tolist() == [0, 0, 0]
        assert outcomes.outputs_correct.all()


class TestBroadcastInputs:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_single_mapping_broadcast_equals_replication(self, name):
        backend = make_backend(name, AND2, "ecim")
        replicated = backend.run_trials([AND2_INPUTS] * 6)
        broadcast = backend.run_trials(AND2_INPUTS, n_trials=6)
        assert np.array_equal(replicated.outputs_correct, broadcast.outputs_correct)
        assert broadcast.n_trials == 6

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_mapping_without_count_is_rejected(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials(AND2_INPUTS)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_contradictory_count_is_rejected(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials([AND2_INPUTS] * 3, n_trials=5)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_zero_trials_is_rejected(self, name):
        backend = make_backend(name, AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials(AND2_INPUTS, n_trials=0)

    def test_missing_signal_is_rejected(self):
        backend = make_backend("batched", AND2, "ecim")
        with pytest.raises(ProtectionError):
            backend.run_trials({AND2.inputs[0]: 1}, n_trials=2)
