"""Tests for the Table II design-space model."""

import math

import pytest

from repro.core.design_space import (
    Granularity,
    design_space_table,
    ecim_costs,
    sep_guaranteed,
    trim_costs,
)
from repro.errors import CoverageError


class TestSepRule:
    def test_gate_and_logic_level_checks_guarantee_sep(self):
        assert sep_guaranteed(Granularity.GATE, Granularity.GATE)
        assert sep_guaranteed(Granularity.GATE, Granularity.LOGIC_LEVEL)

    def test_circuit_granularity_loses_sep(self):
        assert not sep_guaranteed(Granularity.GATE, Granularity.CIRCUIT)
        assert not sep_guaranteed(Granularity.LOGIC_LEVEL, Granularity.CIRCUIT)

    def test_check_cannot_be_finer_than_update(self):
        with pytest.raises(CoverageError):
            sep_guaranteed(Granularity.LOGIC_LEVEL, Granularity.GATE)

    def test_unknown_granularity_rejected(self):
        with pytest.raises(CoverageError):
            sep_guaranteed("word", Granularity.GATE)


class TestCostExpressions:
    def test_trim_gate_granularity_is_classic_tmr(self):
        costs = trim_costs(100, Granularity.GATE)
        assert costs["time"] == pytest.approx(300.0)
        assert costs["energy"] == pytest.approx(300.0)
        assert costs["checker_metadata_bits"] == pytest.approx(200.0)

    def test_trim_logic_level_masks_time_but_not_energy(self):
        costs = trim_costs(100, Granularity.LOGIC_LEVEL, maskable=True)
        assert costs["time"] == pytest.approx(100.0)
        assert costs["energy"] == pytest.approx(300.0)

    def test_ecim_logic_level_is_n_log_n(self):
        n = 256
        costs = ecim_costs(n, Granularity.LOGIC_LEVEL)
        assert costs["time"] == pytest.approx(n * (1 + math.log2(n)))
        assert costs["checker_metadata_bits"] == pytest.approx(n * math.log2(n))

    def test_ecim_gate_granularity_reduces_to_trim(self):
        assert ecim_costs(64, Granularity.GATE) == trim_costs(64, Granularity.GATE)

    def test_invalid_output_count(self):
        with pytest.raises(CoverageError):
            trim_costs(0, Granularity.GATE)
        with pytest.raises(CoverageError):
            ecim_costs(-1, Granularity.LOGIC_LEVEL)

    def test_crossover_ecim_cheaper_metadata_for_small_n(self):
        # ECiM's N log N metadata beats TRiM's 2N only when log N < 2, and is
        # worse beyond — matching Table II's asymptotics.
        assert ecim_costs(2, Granularity.LOGIC_LEVEL)["checker_metadata_bits"] < trim_costs(
            2, Granularity.LOGIC_LEVEL
        )["checker_metadata_bits"]
        assert ecim_costs(256, Granularity.LOGIC_LEVEL)["checker_metadata_bits"] > trim_costs(
            256, Granularity.LOGIC_LEVEL
        )["checker_metadata_bits"]


class TestTable:
    def test_table_has_four_design_points(self):
        points = design_space_table(256)
        assert len(points) == 4

    def test_all_listed_points_guarantee_sep(self):
        assert all(p.sep_guarantee for p in design_space_table(64))

    def test_proposed_design_points_present(self):
        points = design_space_table(128)
        notes = [p.note for p in points]
        assert any("proposed TRiM" in note for note in notes)
        assert any("proposed ECiM" in note for note in notes)

    def test_expressions_match_paper_text(self):
        points = {(p.scheme, p.check_granularity): p for p in design_space_table(32)}
        assert points[("TRiM", Granularity.GATE)].time_expression == "3N"
        assert "masked" in points[("TRiM", Granularity.LOGIC_LEVEL)].time_expression
        assert points[("ECiM", Granularity.LOGIC_LEVEL)].time_expression == "N(1 + logN)"
