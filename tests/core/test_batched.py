"""Batched trial engine vs the scalar executors.

The contract under test (see ``repro/core/batched.py``):

* fault-free executions match the scalar executors **exactly**, per trial;
* exhaustive deterministic single-fault executions match the scalar
  :class:`DeterministicFaultInjector` path exactly, per site — and uphold
  the SEP guarantee (no silent corruption) under ECiM/TRiM;
* stochastic executions are reproducible for a fixed seed and invariant to
  batch composition.
"""

import itertools
import random

import numpy as np
import pytest

from repro.campaign.workloads import get_campaign_workload, sample_inputs
from repro.core.batched import (
    batched_golden_outputs,
    compile_plan,
    run_batch,
    sample_input_matrix,
)
from repro.core.executor import EcimExecutor, TrimExecutor, UnprotectedExecutor
from repro.errors import ProtectionError
from repro.pim.faults import DeterministicFaultInjector, FaultModel
from repro.pim.operations import NullTrace

EXECUTORS = {
    "unprotected": UnprotectedExecutor,
    "ecim": EcimExecutor,
    "trim": TrimExecutor,
}


def scalar_report(netlist, scheme, multi_output, inputs, injector=None):
    cls = EXECUTORS[scheme]
    kwargs = {} if scheme == "unprotected" else {"multi_output": multi_output}
    executor = cls(netlist, fault_injector=injector, **kwargs)
    executor.array.trace = NullTrace()
    return executor.run(inputs)


def assert_trial_matches(result, row, report, netlist, context):
    assert list(result.outputs[row]) == [report.outputs[s] for s in netlist.outputs], context
    assert list(result.golden[row]) == [report.golden_outputs[s] for s in netlist.outputs], context
    assert bool(result.detected[row]) == report.detected, context
    assert int(result.corrections[row]) == report.corrections, context
    assert int(result.uncorrectable_levels[row]) == report.uncorrectable_levels, context


class TestGolden:
    @pytest.mark.parametrize("workload", ["and2", "dot2", "mac4"])
    def test_batched_golden_matches_netlist_evaluation(self, workload):
        netlist = get_campaign_workload(workload).netlist
        matrix = sample_input_matrix(netlist, list(range(16)))
        golden = batched_golden_outputs(netlist, matrix)
        for row in range(matrix.shape[0]):
            expected = netlist.evaluate_outputs(dict(zip(netlist.inputs, map(int, matrix[row]))))
            assert list(golden[row]) == [expected[s] for s in netlist.outputs]

    def test_sample_input_matrix_matches_scalar_sampler(self):
        netlist = get_campaign_workload("dot2").netlist
        seeds = [101, 202, 303]
        matrix = sample_input_matrix(netlist, seeds)
        for row, seed in enumerate(seeds):
            scalar = sample_inputs(netlist, random.Random(seed))
            assert list(matrix[row]) == [scalar[s] for s in netlist.inputs]


class TestFaultFreeExactMatch:
    @pytest.mark.parametrize("workload", ["and2", "dot2"])
    @pytest.mark.parametrize(
        "scheme,multi_output",
        [("unprotected", True), ("ecim", True), ("ecim", False), ("trim", True), ("trim", False)],
    )
    def test_outputs_checks_and_corrections_match_scalar(self, workload, scheme, multi_output):
        netlist = get_campaign_workload(workload).netlist
        plan = compile_plan(netlist, scheme, multi_output=multi_output)
        seeds = list(range(12))
        matrix = sample_input_matrix(netlist, seeds)
        result = run_batch(plan, matrix)
        for row, seed in enumerate(seeds):
            report = scalar_report(
                netlist, scheme, multi_output, sample_inputs(netlist, random.Random(seed))
            )
            assert_trial_matches(result, row, report, netlist, (workload, scheme, multi_output, row))
        assert not result.detected.any()
        assert result.outputs_correct.all()


class TestExhaustiveSingleFault:
    @pytest.mark.parametrize(
        "scheme,multi_output",
        [("ecim", True), ("ecim", False), ("trim", True), ("trim", False)],
    )
    def test_every_site_matches_scalar_and_sep_holds(self, scheme, multi_output):
        netlist = get_campaign_workload("and2").netlist
        plan = compile_plan(netlist, scheme, multi_output=multi_output)
        sites = plan.gate_fault_sites()
        assert sites, "plan must expose injectable gate sites"
        combos = list(itertools.product((0, 1), repeat=len(netlist.inputs)))
        trials = [(combo, site) for combo in combos for site in sites]
        matrix = np.array([combo for combo, _ in trials], dtype=np.uint8)
        fault_plan = [{op: position} for _, (op, position) in trials]
        result = run_batch(plan, matrix, fault_plan=fault_plan)
        for row, (combo, (op, position)) in enumerate(trials):
            report = scalar_report(
                netlist,
                scheme,
                multi_output,
                dict(zip(netlist.inputs, combo)),
                injector=DeterministicFaultInjector(target_output_positions={op: position}),
            )
            assert_trial_matches(
                result, row, report, netlist, (scheme, multi_output, combo, op, position)
            )
        # The SEP guarantee, batched form: any single fault anywhere is
        # corrected or detected — never a silent corruption.
        assert not (~result.outputs_correct & ~result.detected).any()

    def test_out_of_range_fault_positions_inject_nothing(self):
        # Scalar DeterministicFaultInjector never fires for a position its
        # output counter cannot reach; batched must match (in particular a
        # negative position must not wrap to the last output).
        netlist = get_campaign_workload("and2").netlist
        plan = compile_plan(netlist, "trim")
        matrix = np.array([[1, 1], [1, 1], [1, 1]], dtype=np.uint8)
        result = run_batch(plan, matrix, fault_plan=[{0: -1}, {0: 99}, {}])
        assert result.faults_injected.sum() == 0
        assert result.outputs_correct.all()
        assert not result.detected.any()

    def test_unprotected_single_faults_are_silent(self):
        netlist = get_campaign_workload("and2").netlist
        plan = compile_plan(netlist, "unprotected")
        sites = plan.gate_fault_sites()
        matrix = np.tile(np.array([[1, 1]], dtype=np.uint8), (len(sites), 1))
        result = run_batch(plan, matrix, fault_plan=[{op: pos} for op, pos in sites])
        assert not result.detected.any()
        # Flipping the final AND output on inputs (1, 1) must corrupt it.
        assert not result.outputs_correct.all()
        assert result.counts()["silent_corruption"] > 0


class TestStochasticDeterminism:
    def _spec(self, batch):
        netlist = get_campaign_workload("dot2").netlist
        plan = compile_plan(netlist, "ecim")
        input_seeds = list(range(1000, 1000 + batch))
        fault_seeds = list(range(2000, 2000 + batch))
        matrix = sample_input_matrix(netlist, input_seeds)
        return plan, matrix, fault_seeds

    def test_same_seeds_same_outcomes(self):
        plan, matrix, fault_seeds = self._spec(50)
        model = FaultModel(gate_error_rate=1e-2)
        first = run_batch(plan, matrix, model, fault_seeds)
        second = run_batch(plan, matrix, model, fault_seeds)
        assert np.array_equal(first.outputs, second.outputs)
        assert first.counts() == second.counts()

    def test_outcomes_invariant_to_batch_composition(self):
        # A trial's Philox stream is keyed by its own seed, so splitting the
        # batch differently must not change any per-trial outcome.
        plan, matrix, fault_seeds = self._spec(40)
        model = FaultModel(gate_error_rate=1e-2, memory_error_rate=1e-3)
        whole = run_batch(plan, matrix, model, fault_seeds)
        split_at = 13
        front = run_batch(plan, matrix[:split_at], model, fault_seeds[:split_at])
        back = run_batch(plan, matrix[split_at:], model, fault_seeds[split_at:])
        assert np.array_equal(whole.outputs, np.vstack([front.outputs, back.outputs]))
        assert np.array_equal(
            whole.faults_injected,
            np.concatenate([front.faults_injected, back.faults_injected]),
        )
        assert np.array_equal(whole.detected, np.concatenate([front.detected, back.detected]))

    def test_different_seeds_differ(self):
        plan, matrix, fault_seeds = self._spec(60)
        model = FaultModel(gate_error_rate=1e-2)
        a = run_batch(plan, matrix, model, fault_seeds)
        b = run_batch(plan, matrix, model, [s + 10_000 for s in fault_seeds])
        assert not np.array_equal(a.faults_injected, b.faults_injected)


class TestValidation:
    def test_unknown_scheme_rejected(self):
        netlist = get_campaign_workload("and2").netlist
        with pytest.raises(ProtectionError):
            compile_plan(netlist, "parity")

    def test_input_shape_checked(self):
        netlist = get_campaign_workload("and2").netlist
        plan = compile_plan(netlist, "unprotected")
        with pytest.raises(ProtectionError):
            run_batch(plan, np.zeros((4, 7), dtype=np.uint8))

    def test_missing_fault_seeds_rejected(self):
        netlist = get_campaign_workload("and2").netlist
        plan = compile_plan(netlist, "unprotected")
        with pytest.raises(ProtectionError):
            run_batch(plan, np.zeros((4, 2), dtype=np.uint8), FaultModel(gate_error_rate=0.1))

    def test_empty_batch_rejected(self):
        netlist = get_campaign_workload("and2").netlist
        plan = compile_plan(netlist, "unprotected")
        with pytest.raises(ProtectionError):
            run_batch(plan, np.zeros((0, 2), dtype=np.uint8))
