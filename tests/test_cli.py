"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_help_without_command(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("list", "run", "workloads", "technologies", "sep"):
            assert command in text


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output and "fig7" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table42"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "mm8" in output and "mnist4" in output and "fft64" in output

    def test_technologies(self, capsys):
        assert main(["technologies"]) == 0
        assert "reram" in capsys.readouterr().out

    def test_sep(self, capsys):
        assert main(["sep"]) == 0
        assert "Single error protection: holds" in capsys.readouterr().out
