"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_help_without_command(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "list", "run", "workloads", "technologies", "sep", "campaign", "store", "query",
        ):
            assert command in text


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output and "fig7" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table42"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "mm8" in output and "mnist4" in output and "fft64" in output

    def test_technologies(self, capsys):
        assert main(["technologies"]) == 0
        assert "reram" in capsys.readouterr().out

    def test_sep(self, capsys):
        assert main(["sep"]) == 0
        assert "Single error protection: holds" in capsys.readouterr().out

    def test_sep_batched_backend_reproduces_scalar_output(self, capsys):
        assert main(["sep"]) == 0
        scalar = capsys.readouterr().out
        assert main(["sep", "--backend", "batched"]) == 0
        assert capsys.readouterr().out == scalar

    def test_sep_unknown_backend_fails_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["sep", "--backend", "vectorised"])
        err = capsys.readouterr().err
        assert "scalar" in err and "batched" in err

    def test_run_backend_forwarded_to_execution_experiments(self, capsys):
        assert main(["run", "ablation_granularity", "--backend", "batched"]) == 0
        assert "Ablation: check granularity" in capsys.readouterr().out

    def test_run_backend_ignored_for_analytic_experiments(self, capsys):
        assert main(["run", "table1", "--backend", "batched"]) == 0
        captured = capsys.readouterr()
        assert "Table I" in captured.out
        assert "analytic" in captured.err


CAMPAIGN_ARGS = [
    "campaign",
    "--workloads", "and2",
    "--rates", "1e-2",
    "--trials", "12",
    "--shard-size", "4",
    "--workers", "0",
    "--quiet",
]


class TestCampaignCommand:
    def test_runs_and_prints_coverage_table(self, capsys):
        assert main(CAMPAIGN_ARGS) == 0
        out = capsys.readouterr().out
        assert "empirical error coverage" in out
        assert "ecim" in out and "trim" in out and "unprotected" in out
        assert "36 trials across 3 cells" in out

    def test_checkpoint_resume_via_cli(self, capsys, tmp_path):
        path = str(tmp_path / "cli.jsonl")
        assert main(CAMPAIGN_ARGS + ["--checkpoint", path]) == 0
        first = capsys.readouterr().out
        assert "9 shards executed, 0 resumed" in first
        assert main(CAMPAIGN_ARGS + ["--checkpoint", path]) == 0
        second = capsys.readouterr().out
        assert "0 shards executed, 9 resumed" in second

    def test_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(
            workloads=("and2",), schemes=("trim",), gate_error_rates=(1e-2,),
            trials=5, shard_size=5, name="from-file",
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["campaign", "--spec", str(path), "--workers", "0", "--quiet"]) == 0
        assert "from-file" in capsys.readouterr().out

    def test_invalid_workload_fails_cleanly(self, capsys):
        assert main(["campaign", "--workloads", "nonsense", "--trials", "1", "--quiet"]) == 1
        assert "available workloads" in capsys.readouterr().err

    def test_invalid_spec_file_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"workloads": ["and2"], "gpu_count": 8}')
        assert main(["campaign", "--spec", str(path), "--quiet"]) == 1
        assert "invalid campaign spec" in capsys.readouterr().err

    def test_backend_flag_selects_batched(self, capsys):
        assert main(CAMPAIGN_ARGS + ["--backend", "batched"]) == 0
        assert "36 trials across 3 cells" in capsys.readouterr().out

    def test_engine_flag_is_a_deprecated_alias(self, capsys):
        with pytest.deprecated_call():
            assert main(CAMPAIGN_ARGS + ["--engine", "batched"]) == 0
        assert "36 trials across 3 cells" in capsys.readouterr().out

    def test_conflicting_backend_and_engine_fail(self, capsys):
        with pytest.deprecated_call():
            assert main(
                CAMPAIGN_ARGS + ["--backend", "scalar", "--engine", "batched"]
            ) == 1
        assert "conflicting flags" in capsys.readouterr().err

    def test_unknown_backend_fails_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--backend", "vectorised", "--quiet"])
        err = capsys.readouterr().err
        assert "scalar" in err and "batched" in err

    def test_faults_per_trial_flag(self, capsys):
        assert main([
            "campaign", "--workloads", "and2", "--rates", "1e-3",
            "--trials", "12", "--shard-size", "6", "--workers", "0",
            "--faults-per-trial", "2", "--quiet",
        ]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_fault_model_flag(self, capsys):
        assert main([
            "campaign", "--workloads", "and2", "--rates", "5e-3",
            "--trials", "12", "--shard-size", "6", "--workers", "0",
            "--backend", "batched", "--fault-model", "burst:length=3,window=6",
            "--quiet",
        ]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_invalid_fault_model_fails_cleanly(self, capsys):
        assert main([
            "campaign", "--workloads", "and2", "--trials", "4",
            "--fault-model", "gaussian:sigma=2", "--quiet",
        ]) == 1
        assert "invalid campaign spec" in capsys.readouterr().err

    def test_fault_model_flag_applies_on_top_of_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(
            workloads=("and2",), schemes=("ecim",), gate_error_rates=(5e-3,),
            trials=6, shard_size=6, name="spec-fault-model-override",
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        overridden_hash = CampaignSpec.from_dict(
            {**spec.to_dict(), "fault_model": "stuck-at:cells=3,value=1"}
        ).spec_hash()
        assert main([
            "campaign", "--spec", str(path), "--workers", "0", "--quiet",
            "--fault-model", "stuckat:cells=3,polarity=1",
        ]) == 0
        assert overridden_hash in capsys.readouterr().out

    def test_backend_flag_overrides_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(
            workloads=("and2",), schemes=("ecim",), gate_error_rates=(1e-2,),
            trials=8, shard_size=8, name="spec-backend-override",
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        batched_hash = CampaignSpec.from_dict(
            {**spec.to_dict(), "backend": "batched"}
        ).spec_hash()
        assert main(
            ["campaign", "--spec", str(path), "--backend", "batched",
             "--workers", "0", "--quiet"]
        ) == 0
        # The run reports the batched spec hash, proving the override applied.
        assert batched_hash in capsys.readouterr().out


class TestStoreAndQueryCommands:
    def run_campaign_with_db(self, tmp_path, extra=()):
        db = str(tmp_path / "results.sqlite")
        checkpoint = str(tmp_path / "ck.jsonl")
        args = CAMPAIGN_ARGS + ["--db", db, "--checkpoint", checkpoint] + list(extra)
        assert main(args) == 0
        return db, checkpoint

    def test_campaign_db_then_query_table(self, capsys, tmp_path):
        db, _checkpoint = self.run_campaign_with_db(tmp_path)
        capsys.readouterr()
        assert main(["query", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "silent_corruption_rate" in out
        assert "ecim" in out and "trim" in out and "unprotected" in out

    def test_store_ingest_is_idempotent_after_live_recording(self, capsys, tmp_path):
        db, checkpoint = self.run_campaign_with_db(tmp_path)
        capsys.readouterr()
        assert main(["store", "ingest", "--db", db, checkpoint]) == 0
        out = capsys.readouterr().out
        assert "0 new shard(s)" in out
        assert "9 duplicate(s)" in out

    def test_query_json_matches_live_campaign_aggregates(self, capsys, tmp_path):
        import json

        from repro.campaign import CampaignSpec, build_cell_reports, run_campaign

        db, _checkpoint = self.run_campaign_with_db(tmp_path)
        capsys.readouterr()
        assert main(["query", "--db", db, "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        spec = CampaignSpec(
            workloads=("and2",), gate_error_rates=(1e-2,), trials=12,
            shard_size=4, name="cli-campaign",
        )
        result = run_campaign(spec, workers=0)
        reports = {
            r.cell.scheme: r
            for r in build_cell_reports(spec.cells(), result.counts_by_cell)
        }
        assert len(rows) == 3
        for row in rows:
            report = reports[row["scheme"]]
            assert row["trials"] == report.trials
            assert row["coverage"] == report.coverage
            assert (row["coverage_ci_low"], row["coverage_ci_high"]) == report.coverage_interval
            assert row["silent_corruption_rate"] == report.silent_corruption_rate

    def test_query_filters_and_group_by(self, capsys, tmp_path):
        import json

        db, _checkpoint = self.run_campaign_with_db(tmp_path)
        capsys.readouterr()
        assert main([
            "query", "--db", db, "--scheme", "ecim", "--min-error-rate", "1e-3",
            "--group-by", "scheme", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["scheme"] for row in rows] == ["ecim"]
        assert rows[0]["trials"] == 12

    def test_query_bad_group_by_fails_cleanly(self, capsys, tmp_path):
        db, _checkpoint = self.run_campaign_with_db(tmp_path)
        capsys.readouterr()
        assert main(["query", "--db", db, "--group-by", "favourite_colour"]) == 1
        assert "cannot group by" in capsys.readouterr().err

    def test_store_campaigns_lists_recorded_campaign(self, capsys, tmp_path):
        db, _checkpoint = self.run_campaign_with_db(tmp_path)
        capsys.readouterr()
        assert main(["store", "campaigns", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "cli-campaign" in out and "spec_hash" in out

    def test_store_ingest_with_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        db, checkpoint = self.run_campaign_with_db(tmp_path)
        spec = CampaignSpec(
            workloads=("and2",), gate_error_rates=(1e-2,), trials=12,
            shard_size=4, name="cli-campaign",
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        fresh_db = str(tmp_path / "fresh.sqlite")
        capsys.readouterr()
        assert main([
            "store", "ingest", "--db", fresh_db, checkpoint, "--spec", str(spec_path),
        ]) == 0
        assert "9 new shard(s)" in capsys.readouterr().out

    def test_store_ingest_missing_file_fails_cleanly(self, capsys, tmp_path):
        db = str(tmp_path / "results.sqlite")
        assert main(["store", "ingest", "--db", db, str(tmp_path / "nope.jsonl")]) == 1
        assert "ingest failed" in capsys.readouterr().err

    def test_bare_store_prints_help(self, capsys):
        assert main(["store"]) == 0
        assert "ingest" in capsys.readouterr().out

    def test_query_empty_store_reports_no_matches(self, capsys, tmp_path):
        db = str(tmp_path / "empty.sqlite")
        assert main(["query", "--db", db]) == 0
        assert "no matching cells" in capsys.readouterr().err


class TestMultiFaultSweepCommand:
    def test_max_faults_table(self, capsys):
        assert main(["sep", "--max-faults", "2", "--backend", "batched"]) == 0
        output = capsys.readouterr().out
        assert "Multi-fault sweep" in output
        assert "ecim/hamming" in output and "ecim/bch-t2" in output
        assert "budget: holds" in output

    def test_max_faults_k1_rows_match_single_fault_sweep(self, capsys):
        from repro.core.backend import make_backend
        from repro.core.sep import (
            and_gate_example_netlist,
            exhaustive_single_fault_injection,
        )

        netlist = and_gate_example_netlist()
        inputs = {signal: 1 for signal in netlist.inputs}
        single = exhaustive_single_fault_injection(
            make_backend("batched", netlist, "ecim"), inputs
        )
        assert main(["sep", "--max-faults", "2", "--backend", "batched"]) == 0
        output = capsys.readouterr().out
        k1_row = next(
            line for line in output.splitlines()
            if line.startswith("ecim/hamming") and line.split()[1] == "1"
        )
        columns = k1_row.split()
        assert int(columns[2]) == single.total_sites
        assert int(columns[3]) == single.protected_sites

    def test_max_faults_rejects_nonpositive(self, capsys):
        assert main(["sep", "--max-faults", "0"]) == 1
        assert "--max-faults" in capsys.readouterr().err

    def test_default_still_prints_fig6(self, capsys):
        assert main(["sep"]) == 0
        assert "Fig. 6" in capsys.readouterr().out
