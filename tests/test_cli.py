"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_help_without_command(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("list", "run", "workloads", "technologies", "sep", "campaign"):
            assert command in text


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output and "fig7" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table42"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "mm8" in output and "mnist4" in output and "fft64" in output

    def test_technologies(self, capsys):
        assert main(["technologies"]) == 0
        assert "reram" in capsys.readouterr().out

    def test_sep(self, capsys):
        assert main(["sep"]) == 0
        assert "Single error protection: holds" in capsys.readouterr().out


CAMPAIGN_ARGS = [
    "campaign",
    "--workloads", "and2",
    "--rates", "1e-2",
    "--trials", "12",
    "--shard-size", "4",
    "--workers", "0",
    "--quiet",
]


class TestCampaignCommand:
    def test_runs_and_prints_coverage_table(self, capsys):
        assert main(CAMPAIGN_ARGS) == 0
        out = capsys.readouterr().out
        assert "empirical error coverage" in out
        assert "ecim" in out and "trim" in out and "unprotected" in out
        assert "36 trials across 3 cells" in out

    def test_checkpoint_resume_via_cli(self, capsys, tmp_path):
        path = str(tmp_path / "cli.jsonl")
        assert main(CAMPAIGN_ARGS + ["--checkpoint", path]) == 0
        first = capsys.readouterr().out
        assert "9 shards executed, 0 resumed" in first
        assert main(CAMPAIGN_ARGS + ["--checkpoint", path]) == 0
        second = capsys.readouterr().out
        assert "0 shards executed, 9 resumed" in second

    def test_spec_file(self, capsys, tmp_path):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(
            workloads=("and2",), schemes=("trim",), gate_error_rates=(1e-2,),
            trials=5, shard_size=5, name="from-file",
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["campaign", "--spec", str(path), "--workers", "0", "--quiet"]) == 0
        assert "from-file" in capsys.readouterr().out

    def test_invalid_workload_fails_cleanly(self, capsys):
        assert main(["campaign", "--workloads", "nonsense", "--trials", "1", "--quiet"]) == 1
        assert "available workloads" in capsys.readouterr().err

    def test_invalid_spec_file_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"workloads": ["and2"], "gpu_count": 8}')
        assert main(["campaign", "--spec", str(path), "--quiet"]) == 1
        assert "invalid campaign spec" in capsys.readouterr().err
