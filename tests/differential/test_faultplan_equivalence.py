"""Array fault plans vs dict fault plans, across every registered backend
(ISSUE 8 acceptance).

The CSR :class:`~repro.core.faultplan.FaultPlanArrays` form is a pure
re-encoding of the per-trial dict plans: lowering it must be byte-identical
on the scalar reference and every candidate backend, the campaign worker's
array-native plan assembly must reproduce the legacy dict construction
draw-for-draw, and a sharded multiprocess sweep must equal the serial one
for any job count.
"""

import random

import pytest

from repro.campaign.workloads import get_campaign_workload
from repro.core.backend import make_backend
from repro.core.faultplan import FaultPlanArrays
from repro.core.sep import exhaustive_multi_fault_injection

from differential_harness import (
    BACKEND_FACTORIES,
    REFERENCE_BACKEND,
    assert_outcomes_identical,
)

ALL_BACKENDS = (REFERENCE_BACKEND,) + tuple(sorted(BACKEND_FACTORIES))


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestArrayPlanEqualsDictPlan:
    def test_campaign_style_two_flip_plans(self, cell, backend_name):
        """The harness's 'plan' model, fed once as dicts and once as the CSR
        re-encoding: byte-identical TrialOutcomes on every backend."""
        backend = (
            cell.reference
            if backend_name == REFERENCE_BACKEND
            else cell.candidates[backend_name]
        )
        dict_plans = cell._two_flip_plans()
        arrays = FaultPlanArrays.from_dicts(dict_plans)
        assert arrays.to_dicts() == [
            {op: tuple(sorted(positions)) for op, positions in plan.items()}
            for plan in dict_plans
        ]
        from_dicts = backend.run_trials(cell.inputs, fault_plan=dict_plans)
        from_arrays = backend.run_trials(cell.inputs, fault_plan=arrays)
        context = f"{cell.workload}/{cell.scheme}/mo={cell.multi_output}/{backend_name}"
        assert_outcomes_identical(from_dicts, from_arrays, context)
        assert from_arrays.counts()["faulty_trials"] > 0


class TestWorkerPlanAssembly:
    """The campaign worker's array-native k-flip assembly reproduces the
    legacy per-trial dict construction (the golden counters rest on the
    exact ``random.Random(seed).sample`` draws)."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_draws_match_legacy_dict_construction(self, k):
        from repro.campaign.worker import _multi_fault_plan

        backend = make_backend(
            "scalar", get_campaign_workload("and2").netlist, "ecim"
        )
        sites = backend.enumerate_sites()
        fault_seeds = [1000 + trial for trial in range(24)]
        arrays = _multi_fault_plan(sites, fault_seeds, k)
        legacy = []
        for seed in fault_seeds:
            chosen = random.Random(seed).sample(range(len(sites)), k)
            entry = {}
            for index in chosen:
                site = sites[index]
                entry.setdefault(site.operation_index, []).append(
                    site.output_position
                )
            legacy.append(
                {op: tuple(sorted(set(p))) for op, p in entry.items()}
            )
        assert arrays.to_dicts() == legacy


class TestShardedSweepInvariance:
    """`--jobs N` sharding is placement-independent: counters AND ordered
    outcomes are identical for any job count and any shard size."""

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_jobs_and_chunk_size_do_not_change_results(self, backend_name):
        netlist = get_campaign_workload("and2").netlist
        factory = BACKEND_FACTORIES.get(backend_name)
        backend = (
            make_backend(REFERENCE_BACKEND, netlist, "ecim")
            if factory is None
            else factory(netlist, "ecim", True)
        )
        inputs = {signal: 1 for signal in netlist.inputs}
        serial = exhaustive_multi_fault_injection(
            backend, inputs, k=2, chunk_size=4096, jobs=1
        )
        sharded = exhaustive_multi_fault_injection(
            backend, inputs, k=2, chunk_size=64, jobs=2
        )
        assert sharded.coverage_row() == serial.coverage_row()
        for name in (
            "total_combinations",
            "corrected_combinations",
            "detected_combinations",
            "silent_combinations",
            "sep_guaranteed_combinations",
            "code_corrected_combinations",
            "budget_violations",
        ):
            assert getattr(sharded, name) == getattr(serial, name), name
        assert [o.sites for o in sharded.outcomes] == [
            o.sites for o in serial.outcomes
        ]
        assert [o.classification for o in sharded.outcomes] == [
            o.classification for o in serial.outcomes
        ]
