"""The scalar/batched RNG contract (ISSUE 5 satellite).

``derive_seed`` keys every per-trial stream by name — ``"inputs"`` drives
input sampling only, ``"faults"`` drives everything fault-related
(stochastic flip positions, burst trigger offsets, k-flip site choice;
stuck cells are deterministic and consume no stream).  These tests pin the
contract documented in :func:`repro.core.backend.derive_seed`:

* distinct stream names derive statistically independent (here: pairwise
  distinct) seeds, for the same trial identity;
* input sampling is invariant to the fault model — swapping models, or
  injecting nothing at all, never perturbs a trial's inputs;
* the shared Philox primitive consumed by both backends produces one and
  the same uniform sequence whether drawn scalar-style (``PhiloxRandom``,
  one call at a time) or batched-style (one block per trial).
"""

import numpy as np
import pytest

from repro.campaign.spec import trial_seed
from repro.core.backend import derive_seed
from repro.core.batched import _uniform_streams, sample_input_matrix
from repro.pim.faults import FaultModelSpec, PhiloxRandom

from differential_harness import MODEL_KINDS, get_cell


class TestStreamIndependence:
    def test_named_streams_never_collide(self):
        seeds = {
            (trial, stream): derive_seed(7, "cell", trial, stream)
            for trial in range(200)
            for stream in ("inputs", "faults")
        }
        # Pairwise distinct across trials AND across stream names.
        assert len(set(seeds.values())) == len(seeds)

    def test_campaign_trial_seed_separates_the_same_streams(self):
        assert trial_seed(0, "k", 3, "inputs") != trial_seed(0, "k", 3, "faults")

    def test_stream_only_differs_in_last_component(self):
        # The stream name is the sole discriminator between a trial's input
        # and fault randomness; everything upstream is shared identity.
        a = derive_seed(1, "cell", 9, "inputs")
        b = derive_seed(1, "cell", 9, "faults")
        assert a != b
        assert derive_seed(1, "cell", 9, "inputs") == a  # and stable


class TestInputsInvariantToFaultModel:
    @pytest.mark.parametrize("backend_name", ["scalar", "batched"])
    def test_inputs_identical_under_every_fault_model(self, backend_name):
        """Consuming (or not consuming) the fault stream must never shift
        input sampling: the same input seeds give the same matrix, and a
        faulty batch leaves the caller's matrix untouched."""
        cell = get_cell("dot2", "ecim", True)
        backend = cell.reference if backend_name == "scalar" else cell.candidates["batched"]
        before = cell.inputs.copy()
        for kind in MODEL_KINDS:
            backend.run_trials(cell.inputs, **cell.run_kwargs(kind))
            assert np.array_equal(cell.inputs, before)
        resampled = sample_input_matrix(backend.netlist, cell.input_seeds)
        assert np.array_equal(resampled, before)

    def test_fault_free_outcomes_unchanged_after_faulty_batches(self):
        cell = get_cell("and2", "trim", True)
        baseline = cell.reference.run_trials(cell.inputs).counts()
        for kind in MODEL_KINDS:
            cell.reference.run_trials(cell.inputs, **cell.run_kwargs(kind))
        assert cell.reference.run_trials(cell.inputs).counts() == baseline


class TestSharedPhiloxPrimitive:
    def test_scalar_and_batched_draws_are_one_stream(self):
        # The mechanism behind byte-identical fault models: PhiloxRandom
        # (scalar injectors) and _uniform_streams (batched tape) consume the
        # very same counter-based sequence for one trial seed.
        seeds = [derive_seed(11, t, "faults") for t in range(5)]
        block = _uniform_streams(seeds, 64)
        for row, seed in enumerate(seeds):
            rng = PhiloxRandom(seed)
            sequential = np.array([rng.random() for _ in range(64)])
            assert np.array_equal(block[row], sequential)

    def test_distinct_seeds_produce_distinct_streams(self):
        a = np.array([PhiloxRandom(1).random() for _ in range(8)])
        b = np.array([PhiloxRandom(2).random() for _ in range(8)])
        assert not np.array_equal(a, b)

    def test_stuck_at_needs_no_stream(self):
        spec = FaultModelSpec.stuck_at((3,), 1)
        assert not spec.needs_seeds
        # And the stochastic kinds refuse to run seedless.
        with pytest.raises(Exception):
            FaultModelSpec.burst(2, 4, gate_error_rate=0.1).make_injector(seed=None)
