"""Cross-backend differential harness: shared grid, factories and fixtures.

This package is the single systematic scalar-vs-batched equivalence surface
(ISSUE 5): every *(workload x scheme x gate-style x fault-model)* cell is
compiled once per session and every registered candidate backend must
produce **byte-identical** :class:`~repro.core.backend.TrialOutcomes`
against the scalar reference from shared per-trial seeds — counters and all
five per-trial vectors.

Registering a new execution backend (e.g. a GPU tape interpreter) in the
harness takes one line: add a ``name -> factory(netlist, scheme,
multi_output)`` entry to :data:`BACKEND_FACTORIES` and the full differential
grid applies to it automatically.

The four fault models of the grid mirror the scalar injector family:

* ``stochastic`` — independent Bernoulli flips (gate + memory + preset +
  metadata rates), Philox streams shared across backends;
* ``burst`` — correlated bursts (trigger rate, length, correlation window)
  plus independent memory errors;
* ``stuck-at`` — permanent faults on a data output column and the last
  metadata column of the cell's layout;
* ``plan`` — deterministic two-flip plans per trial, drawn from the trial's
  fault seed over the backend-enumerated site list.

Rates are deliberately high so that a significant fraction of trials
injects faults — a differential test on an all-clean batch proves nothing.
"""

import itertools
import random

import numpy as np

from repro.campaign.workloads import get_campaign_workload
from repro.core.backend import derive_seed, make_backend
from repro.core.batched import sample_input_matrix
from repro.pim.faults import FaultModelSpec

#: The bit-exact legacy engine every candidate is measured against.
REFERENCE_BACKEND = "scalar"

#: Candidate backends under differential test.  A future backend joins the
#: whole grid by registering a factory here.
BACKEND_FACTORIES = {
    "batched": lambda netlist, scheme, multi_output: make_backend(
        "batched", netlist, scheme, multi_output=multi_output
    ),
    "bitpacked": lambda netlist, scheme, multi_output: make_backend(
        "bitpacked", netlist, scheme, multi_output=multi_output
    ),
}

WORKLOADS = ("and2", "dot2", "fft4")
SCHEMES = ("ecim", "trim")
GATE_STYLES = (True, False)  # multi-output vs single-output
MODEL_KINDS = ("stochastic", "burst", "stuck-at", "plan")
TRIALS = 16
SEED = 2024

#: Per-workload trial budgets.  The application netlists are orders of
#: magnitude bigger than the arithmetic kernels (mlp16 is 5112 gates; the
#: scalar reference costs ~1 s/trial on it), so mlp16 runs a reduced batch
#: — still enough that every grid fault model injects into every trial.
TRIAL_COUNTS = {"mlp16": 4}

#: The grid, with human-readable pytest ids.  The full product covers the
#: cheap workloads (fft4's 200-gate netlist rides along at full width);
#: mlp16 joins as a single runtime-bounded cell that still exercises every
#: fault model and every candidate backend.
GRID = tuple(itertools.product(WORKLOADS, SCHEMES, GATE_STYLES)) + (
    ("mlp16", "ecim", True),
)


def _grid_id(cell):
    workload, scheme, multi_output = cell
    return f"{workload}-{scheme}-{'mo' if multi_output else 'so'}"


class DifferentialCell:
    """One compiled grid cell: reference + candidate backends and the shared
    per-trial inputs/seeds every fault model reuses."""

    def __init__(self, workload, scheme, multi_output):
        self.workload = workload
        self.scheme = scheme
        self.multi_output = multi_output
        netlist = get_campaign_workload(workload).netlist
        self.reference = make_backend(
            REFERENCE_BACKEND, netlist, scheme, multi_output=multi_output
        )
        self.candidates = {
            name: build(netlist, scheme, multi_output)
            for name, build in BACKEND_FACTORIES.items()
        }
        self.trials = TRIAL_COUNTS.get(workload, TRIALS)
        self.input_seeds = [
            derive_seed(SEED, workload, scheme, multi_output, trial, "inputs")
            for trial in range(self.trials)
        ]
        self.fault_seeds = [
            derive_seed(SEED, workload, scheme, multi_output, trial, "faults")
            for trial in range(self.trials)
        ]
        self.inputs = sample_input_matrix(netlist, self.input_seeds)
        # Column layout is shared between backends (the tape compiler reuses
        # the scalar executor's layout verbatim), so the batched plan is the
        # cheap way to pick valid stuck columns for both.
        plan = self.candidates["batched"].plan
        self.stuck_columns = (int(plan.output_cols[0]), plan.n_cols - 1)
        self._sites = None
        self._reference_outcomes = {}

    @property
    def sites(self):
        if self._sites is None:
            self._sites = self.reference.enumerate_sites()
        return self._sites

    def reference_outcomes(self, kind):
        """The scalar reference :class:`TrialOutcomes` for one fault model,
        computed once per cell: the reference run is deterministic, and on
        the big application netlists it dominates the grid's runtime."""
        if kind not in self._reference_outcomes:
            self._reference_outcomes[kind] = self.reference.run_trials(
                self.inputs, **self.run_kwargs(kind)
            )
        return self._reference_outcomes[kind]

    def run_kwargs(self, kind):
        """The ``run_trials`` keyword set realising one fault model."""
        if kind == "stochastic":
            return dict(
                fault_model=FaultModelSpec.stochastic(
                    gate_error_rate=0.02,
                    memory_error_rate=0.01,
                    preset_error_rate=0.005,
                    metadata_error_rate=0.03,
                ),
                fault_seeds=self.fault_seeds,
            )
        if kind == "burst":
            return dict(
                fault_model=FaultModelSpec.burst(
                    burst_length=3,
                    correlation_window=5,
                    gate_error_rate=0.01,
                    memory_error_rate=0.005,
                ),
                fault_seeds=self.fault_seeds,
            )
        if kind == "stuck-at":
            return dict(
                fault_model=FaultModelSpec.stuck_at(self.stuck_columns, stuck_polarity=1)
            )
        if kind == "plan":
            return dict(fault_plan=self._two_flip_plans())
        raise ValueError(f"unknown differential fault-model kind {kind!r}")

    def _two_flip_plans(self):
        """Deterministic two-flip plans per trial, campaign-style: uniform
        site pairs drawn from each trial's fault seed."""
        plans = []
        for seed in self.fault_seeds:
            chosen = random.Random(seed).sample(range(len(self.sites)), 2)
            entry = {}
            for index in chosen:
                site = self.sites[index]
                entry.setdefault(site.operation_index, []).append(site.output_position)
            plans.append({op: tuple(positions) for op, positions in entry.items()})
        return plans


_CELL_CACHE = {}


def get_cell(workload, scheme, multi_output) -> DifferentialCell:
    """Session-level cell cache: each grid cell compiles exactly once no
    matter how many fault models and candidates exercise it."""
    key = (workload, scheme, multi_output)
    if key not in _CELL_CACHE:
        _CELL_CACHE[key] = DifferentialCell(*key)
    return _CELL_CACHE[key]


def assert_outcomes_identical(reference, candidate, context=""):
    """Byte-identical :class:`TrialOutcomes`: summed counters AND every
    per-trial vector."""
    assert reference.counts() == candidate.counts(), context
    for field in (
        "outputs_correct",
        "detected",
        "corrections",
        "uncorrectable_levels",
        "faults_injected",
    ):
        assert np.array_equal(
            getattr(reference, field), getattr(candidate, field)
        ), f"{context}: per-trial {field} vectors differ"
