"""Fixtures of the cross-backend differential harness.

The grid, backend factories and cell cache live in
``differential_harness.py`` (a uniquely named sibling module, so the import
below never collides with another directory's ``conftest``); this file only
binds the session-scoped ``cell`` fixture pytest injects into the tests.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from differential_harness import GRID, DifferentialCell, _grid_id, get_cell  # noqa: E402


@pytest.fixture(params=GRID, ids=_grid_id, scope="session")
def cell(request) -> DifferentialCell:
    return get_cell(*request.param)
