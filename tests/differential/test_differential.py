"""The cross-backend differential harness (ISSUE 5 acceptance).

One parametrized surface proves, for every registered candidate backend
against the scalar reference:

* byte-identical ``TrialOutcomes`` (counters + per-trial vectors) for all
  four fault models on every (workload x scheme x gate-style) cell, from
  shared per-trial seeds;
* identical fault-site enumeration (the property deterministic plans and
  campaign k-flip trials rest on);
* per-site classification equality under the exhaustive single-fault SEP
  sweep, including on a synthesized workload netlist.

These parametrizations consolidate the per-feature scalar-vs-batched
equality tests that previously lived in ``tests/core/test_backend.py``; a
new backend (e.g. a GPU tape) joins by registering one factory in
``conftest.BACKEND_FACTORIES``.
"""

import random

import pytest

from repro.campaign.workloads import get_campaign_workload, sample_inputs
from repro.core.backend import make_backend
from repro.core.sep import exhaustive_single_fault_injection

from differential_harness import (
    BACKEND_FACTORIES,
    MODEL_KINDS,
    assert_outcomes_identical,
)

CANDIDATES = tuple(sorted(BACKEND_FACTORIES))


@pytest.mark.parametrize("candidate", CANDIDATES)
@pytest.mark.parametrize("kind", MODEL_KINDS)
class TestByteIdenticalOutcomes:
    """Acceptance: byte-identical TrialOutcomes for all four fault models on
    the arithmetic workloads x both schemes (x both gate styles) plus the
    application netlists (fft4 full-width, mlp16 runtime-bounded), shared
    trial seeds."""

    def test_outcomes_byte_identical(self, cell, kind, candidate):
        reference = cell.reference_outcomes(kind)
        outcome = cell.candidates[candidate].run_trials(cell.inputs, **cell.run_kwargs(kind))
        context = f"{cell.workload}/{cell.scheme}/mo={cell.multi_output}/{kind}/{candidate}"
        assert_outcomes_identical(reference, outcome, context)
        assert reference.n_trials == cell.trials

    def test_models_actually_inject(self, cell, kind, candidate):
        """A differential pass over an all-clean batch proves nothing: every
        grid model must inject faults into a meaningful share of trials."""
        outcome = cell.candidates[candidate].run_trials(cell.inputs, **cell.run_kwargs(kind))
        assert outcome.counts()["faulty_trials"] > 0


@pytest.mark.parametrize("candidate", CANDIDATES)
class TestSiteEnumerationEquivalence:
    def test_identical_sites_in_firing_order(self, cell, candidate):
        inputs = {signal: 1 for signal in cell.reference.netlist.inputs}
        reference_sites = cell.reference.enumerate_sites(inputs)
        candidate_sites = cell.candidates[candidate].enumerate_sites(inputs)
        # Full FaultSite equality: op index, position, gate, metadata flag,
        # logic level and physical column all agree, in firing order.
        assert reference_sites == candidate_sites
        assert reference_sites


def _synthesized_dot_netlist():
    """The smallest synthesized mm-family unit block (2-term dot product,
    1-bit operands): 60 gates — big enough to exercise multi-level parity
    banks, small enough for a full scalar sweep in tier-1 time."""
    from repro.workloads.matmul import dot_product_netlist

    return dot_product_netlist(2, 1)


class TestSepEquivalence:
    """Per-site outcome equality between backends, exhaustively — on the
    Fig. 6 AND example and on a synthesized workload netlist."""

    @pytest.mark.parametrize("candidate", CANDIDATES)
    @pytest.mark.parametrize("workload", ["and2", "dot-2x1"])
    @pytest.mark.parametrize("scheme", ["ecim", "trim"])
    def test_every_site_classifies_identically(self, workload, scheme, candidate):
        netlist = (
            get_campaign_workload("and2").netlist
            if workload == "and2"
            else _synthesized_dot_netlist()
        )
        inputs = sample_inputs(netlist, random.Random(13))
        reference = exhaustive_single_fault_injection(
            make_backend("scalar", netlist, scheme), inputs
        )
        outcome = exhaustive_single_fault_injection(
            BACKEND_FACTORIES[candidate](netlist, scheme, True), inputs
        )
        assert reference.total_sites == outcome.total_sites > 0
        for s, b in zip(reference.outcomes, outcome.outcomes):
            assert s.site == b.site
            assert s.classification == b.classification, s.site
            assert (s.final_outputs_correct, s.error_detected, s.corrections,
                    s.uncorrectable_levels) == (
                b.final_outputs_correct, b.error_detected, b.corrections,
                b.uncorrectable_levels), s.site
        # And SEP itself holds on the protected schemes.
        assert reference.sep_guaranteed and outcome.sep_guaranteed

    @pytest.mark.parametrize("candidate", CANDIDATES)
    def test_unprotected_classifications_also_agree(self, candidate):
        netlist = get_campaign_workload("and2").netlist
        inputs = {netlist.inputs[0]: 1, netlist.inputs[1]: 1}
        reference = exhaustive_single_fault_injection(
            make_backend("scalar", netlist, "unprotected"), inputs
        )
        outcome = exhaustive_single_fault_injection(
            BACKEND_FACTORIES[candidate](netlist, "unprotected", True), inputs
        )
        assert [o.classification for o in reference.outcomes] == [
            o.classification for o in outcome.outcomes
        ]
        assert not reference.sep_guaranteed and not outcome.sep_guaranteed


@pytest.mark.parametrize("candidate", CANDIDATES)
@pytest.mark.parametrize("kind", [k for k in MODEL_KINDS if k != "plan"])
class TestReproducibility:
    def test_fault_model_runs_reproduce_on_every_backend(self, cell, kind, candidate):
        backend = cell.candidates[candidate]
        first = backend.run_trials(cell.inputs, **cell.run_kwargs(kind))
        again = backend.run_trials(cell.inputs, **cell.run_kwargs(kind))
        assert_outcomes_identical(first, again, f"reproducibility/{candidate}/{kind}")
