"""Tests for the shared statistics helpers (``repro.stats``).

The Wilson reference values below are *scipy-free*: computed once from the
closed-form Wilson formula with exact inputs, written down as literals, and
asserted to full float precision.  Both the campaign aggregator and the
results-store query layer import this single implementation, so these pins
also guard the byte-for-byte contract between ``python -m repro query`` and
``run_campaign`` reports.
"""

import pytest

from repro.errors import EvaluationError
from repro.stats import (
    effective_sample_size,
    interval_halfwidth,
    stratified_mean_interval,
    weighted_mean_interval,
    wilson_interval,
)

#: (successes, trials, z) -> exact (low, high) under IEEE-754 doubles.
REFERENCE_VALUES = [
    # 95% (z = 1.96), the campaign default.
    ((0, 10, 1.96), (0.0, 0.2775401687666165)),
    ((10, 10, 1.96), (0.7224598312333834, 1.0)),
    ((5, 10, 1.96), (0.2365895936154873, 0.7634104063845127)),
    ((1, 100, 1.96), (0.0017673865655472639, 0.05448752476093461)),
    ((999, 1000, 1.96), (0.9943572970398397, 0.9998234581709428)),
    # 99% (z = Phi^-1(0.995)).
    ((50, 1000, 2.5758293035489004), (0.03502507572253244, 0.0709069726905337)),
]


class TestWilsonInterval:
    @pytest.mark.parametrize("args,expected", REFERENCE_VALUES)
    def test_reference_values_exact(self, args, expected):
        assert wilson_interval(*args) == expected

    def test_zero_trials_is_the_vacuous_interval(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_zero_successes_lower_bound_is_exactly_zero(self):
        low, high = wilson_interval(0, 10_000)
        assert low == 0.0
        assert 0.0 < high < 1e-3  # non-degenerate: the defensible-claim bound

    def test_all_successes_upper_bound_is_exactly_one(self):
        low, high = wilson_interval(10_000, 10_000)
        assert high == 1.0
        assert 1.0 - 1e-3 < low < 1.0

    def test_interval_contains_point_estimate(self):
        for successes, trials in [(0, 7), (3, 7), (7, 7), (1, 1000)]:
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high

    def test_wider_z_widens_the_interval(self):
        narrow = wilson_interval(40, 100, z=1.0)
        wide = wilson_interval(40, 100, z=3.0)
        assert wide[0] < narrow[0] and narrow[1] < wide[1]

    @pytest.mark.parametrize("successes,trials", [(-1, 10), (11, 10), (1, -1)])
    def test_invalid_counts_raise(self, successes, trials):
        with pytest.raises(EvaluationError):
            wilson_interval(successes, trials)

    def test_nonpositive_z_raises(self):
        with pytest.raises(EvaluationError):
            wilson_interval(1, 10, z=0.0)

    def test_aggregator_reexports_the_shared_implementation(self):
        from repro.campaign import wilson_interval as campaign_wilson
        from repro.campaign.aggregate import wilson_interval as aggregate_wilson

        assert campaign_wilson is wilson_interval
        assert aggregate_wilson is wilson_interval


class TestWeightedMeanInterval:
    def test_unit_weights_recover_the_sample_proportion(self):
        # 3 successes of weight 1 in 10 trials: HT mean is exactly 0.3.
        mean, low, high = weighted_mean_interval(3.0, 3.0, 10)
        assert mean == pytest.approx(0.3)
        assert low <= mean <= high

    def test_zero_weight_sum_gives_zero_mean(self):
        mean, low, high = weighted_mean_interval(0.0, 0.0, 10)
        assert (mean, low) == (0.0, 0.0)

    def test_degenerate_trial_counts(self):
        assert weighted_mean_interval(0.0, 0.0, 0) == (0.0, 0.0, 1.0)
        assert weighted_mean_interval(0.5, 0.25, 1) == (0.5, 0.0, 1.0)

    def test_more_trials_tighten_the_interval(self):
        _, small_low, small_high = weighted_mean_interval(30.0, 30.0, 100)
        _, big_low, big_high = weighted_mean_interval(300.0, 300.0, 1000)
        assert (big_high - big_low) < (small_high - small_low)

    def test_wider_z_widens_the_interval(self):
        _, low1, high1 = weighted_mean_interval(30.0, 30.0, 100, z=1.0)
        _, low3, high3 = weighted_mean_interval(30.0, 30.0, 100, z=3.0)
        assert (high3 - low3) > (high1 - low1)


class TestEffectiveSampleSize:
    def test_uniform_weights_give_n(self):
        assert effective_sample_size(100.0, 100.0) == pytest.approx(100.0)

    def test_skewed_weights_shrink_the_ess(self):
        # One weight of 10 and nine of 0.1: ESS collapses toward 1.
        weight_sum = 10.0 + 9 * 0.1
        weight_sq = 100.0 + 9 * 0.01
        assert effective_sample_size(weight_sum, weight_sq) < 2.0

    def test_zero_square_sum_is_zero(self):
        assert effective_sample_size(0.0, 0.0) == 0.0


class TestStratifiedMeanInterval:
    def test_single_stratum_matches_the_plain_proportion(self):
        mean, low, high = stratified_mean_interval([(1.0, 100, 30)])
        assert mean == pytest.approx(0.3)
        assert low <= mean <= high

    def test_pooled_mean_is_probability_weighted(self):
        strata = [(0.9, 100, 0), (0.1, 100, 50)]
        mean, low, high = stratified_mean_interval(strata)
        assert mean == pytest.approx(0.9 * 0.0 + 0.1 * 0.5)
        assert 0.0 <= low <= mean <= high <= 1.0

    def test_unsampled_strata_are_skipped(self):
        with_empty = stratified_mean_interval([(0.5, 100, 30), (0.5, 0, 0)])
        without = stratified_mean_interval([(0.5, 100, 30)])
        assert with_empty == without


class TestIntervalHalfwidth:
    def test_halfwidth_is_half_the_width(self):
        assert interval_halfwidth((0.2, 0.6)) == pytest.approx(0.2)
        assert interval_halfwidth((0.0, 0.0)) == 0.0
