"""Golden regression store: pinned trial counters per fault model.

Each JSON file under this directory pins the summed ``TrialOutcomes``
counters of the ``dot2`` campaign unit block under one protection scheme,
for every fault-model kind, at fixed seeds — so *silent numerical drift*
anywhere in the stack (gate tables, tape compilation, ECC decode, fault
streams, outcome classification) fails loudly instead of shifting published
numbers.

The model definitions here are deliberately **self-contained** (not shared
with ``tests/differential``): goldens pin semantics, and must not drift
because a test harness retuned its rates.  The stuck columns are derived
from the compiled plan's column layout, so a layout change is *also* caught
as drift (the columns are recorded in the payload for debuggability).

Counters are computed on the batched backend and re-verified against the
same pins on every other byte-identical engine (``PINNED_BACKENDS``; the
differential harness separately proves scalar produces byte-identical
outcomes for every kind).

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python tests/golden/golden_store.py --write

and justify the refresh in the commit message.
"""

import json
import os
import random
import sys

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

WORKLOAD = "dot2"
SCHEMES = ("ecim", "trim")
MODEL_KINDS = ("stochastic", "burst", "stuck-at", "plan")
TRIALS = 32
SEED = 7
BACKEND = "batched"
#: Backends whose counters must reproduce the stored pins byte-for-byte
#: (all four golden kinds run the byte-identical declarative / plan paths).
PINNED_BACKENDS = ("batched", "bitpacked")


def golden_path(scheme: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{WORKLOAD}_{scheme}.json")


def load_golden(scheme: str) -> dict:
    """Load one scheme's pinned payload (the tests' entry point)."""
    with open(golden_path(scheme), "r", encoding="utf-8") as handle:
        return json.load(handle)


def _backend(scheme: str, backend: str = BACKEND):
    from repro.campaign.workloads import get_campaign_workload
    from repro.core.backend import make_backend

    netlist = get_campaign_workload(WORKLOAD).netlist
    return make_backend(backend, netlist, scheme)


def _seeds(stream: str):
    from repro.core.backend import derive_seed

    return [derive_seed(SEED, "golden", WORKLOAD, trial, stream) for trial in range(TRIALS)]


def _stuck_columns(backend) -> tuple:
    plan = backend.plan
    return (int(plan.output_cols[0]), plan.n_cols - 1)


def _run_kwargs(backend, kind: str) -> dict:
    from repro.pim.faults import FaultModelSpec

    fault_seeds = _seeds("faults")
    if kind == "stochastic":
        return dict(
            fault_model=FaultModelSpec.stochastic(
                gate_error_rate=0.015,
                memory_error_rate=0.008,
                preset_error_rate=0.004,
                metadata_error_rate=0.02,
            ),
            fault_seeds=fault_seeds,
        )
    if kind == "burst":
        return dict(
            fault_model=FaultModelSpec.burst(
                burst_length=3,
                correlation_window=6,
                gate_error_rate=0.008,
                memory_error_rate=0.004,
            ),
            fault_seeds=fault_seeds,
        )
    if kind == "stuck-at":
        return dict(
            fault_model=FaultModelSpec.stuck_at(_stuck_columns(backend), stuck_polarity=1)
        )
    if kind == "plan":
        sites = backend.enumerate_sites()
        plans = []
        for seed in fault_seeds:
            chosen = random.Random(seed).sample(range(len(sites)), 2)
            entry = {}
            for index in chosen:
                site = sites[index]
                entry.setdefault(site.operation_index, []).append(site.output_position)
            plans.append({op: tuple(positions) for op, positions in entry.items()})
        return dict(fault_plan=plans)
    raise ValueError(f"unknown golden fault-model kind {kind!r}")


def compute_counts(scheme: str, kind: str, backend: str = BACKEND) -> dict:
    """Current counters for one (scheme, fault model) golden cell."""
    from repro.core.batched import sample_input_matrix

    engine = _backend(scheme, backend)
    inputs = sample_input_matrix(engine.netlist, _seeds("inputs"))
    return engine.run_trials(inputs, **_run_kwargs(engine, kind)).counts()


def compute_payload(scheme: str) -> dict:
    backend = _backend(scheme)
    return {
        "workload": WORKLOAD,
        "scheme": scheme,
        "backend": BACKEND,
        "trials": TRIALS,
        "seed": SEED,
        "stuck_columns": list(_stuck_columns(backend)),
        "counters": {kind: compute_counts(scheme, kind) for kind in MODEL_KINDS},
    }


def main(argv) -> int:
    if argv[1:] != ["--write"]:
        print(__doc__)
        print(f"usage: PYTHONPATH=src python {argv[0]} --write", file=sys.stderr)
        return 2
    for scheme in SCHEMES:
        payload = compute_payload(scheme)
        with open(golden_path(scheme), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {golden_path(scheme)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
