"""Golden regression tests: the ``repro query`` CSV/JSON output schema.

These pin the *rendered bytes* of ``python -m repro query --format csv|json``
over a deterministic corpus — the machine-readable query formats are an API
that downstream analysis scripts parse, so column names, column order,
float formatting and row ordering may only change deliberately (regenerate
with ``PYTHONPATH=src python tests/golden/query_golden.py --write`` and say
why in the commit message).
"""

import json

import pytest

import query_golden
from repro.store import DEFAULT_GROUP_BY, DERIVED_COLUMNS


@pytest.fixture(scope="module")
def golden_db(tmp_path_factory):
    db_path = tmp_path_factory.mktemp("golden_query") / "golden.sqlite"
    query_golden.build_database(db_path)
    return db_path


@pytest.mark.parametrize("fmt", query_golden.FORMATS)
def test_query_output_matches_golden_bytes(golden_db, fmt):
    assert query_golden.render(golden_db, fmt) == query_golden.load_golden(fmt), (
        f"query {fmt} output drifted: if this schema/number change is "
        "intentional, regenerate with "
        "PYTHONPATH=src python tests/golden/query_golden.py --write"
    )


def test_golden_json_carries_the_documented_schema():
    rows = json.loads(query_golden.load_golden("json"))
    expected_columns = list(DEFAULT_GROUP_BY) + list(DERIVED_COLUMNS)
    assert rows, "golden corpus must not be empty"
    for row in rows:
        assert list(row) == expected_columns


def test_golden_csv_header_matches_json_schema():
    header = query_golden.load_golden("csv").splitlines()[0]
    assert header.split(",") == list(DEFAULT_GROUP_BY) + list(DERIVED_COLUMNS)
