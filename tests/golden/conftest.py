"""Make the uniquely named sibling ``golden_store`` module importable from
the golden regression tests regardless of pytest's rootdir handling."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
