"""Golden pins for the ``python -m repro query`` output schema.

``store_query.csv`` / ``store_query.json`` hold the byte-exact CLI output of
a default-grouped query over a small deterministic corpus (three seeded
campaigns — legacy fault model, a burst model, and an fft4 application
campaign — recorded live through ``run_campaign(db=...)``).  A failure means either the query output *schema*
changed (column set, order, formatting) or the underlying numbers drifted —
both must be deliberate.  Regenerate after an intentional change with::

    PYTHONPATH=src python tests/golden/query_golden.py --write

and say why in the commit message.
"""

import contextlib
import io
import os
import sys
import tempfile

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

FORMATS = ("csv", "json")


def golden_path(fmt: str) -> str:
    return os.path.join(GOLDEN_DIR, f"store_query.{fmt}")


def load_golden(fmt: str) -> str:
    with open(golden_path(fmt), "r", encoding="utf-8") as handle:
        return handle.read()


def corpus_specs():
    from repro.campaign import CampaignSpec

    common = dict(
        workloads=("and2",),
        schemes=("unprotected", "ecim", "trim"),
        gate_error_rates=(1e-3, 1e-2),
        trials=8,
        shard_size=4,
        seed=3,
    )
    return [
        CampaignSpec(name="golden-legacy", **common),
        CampaignSpec(name="golden-burst", fault_model="burst:length=2,window=4", **common),
        CampaignSpec(
            name="golden-application",
            workloads=("fft4",),
            schemes=("unprotected", "ecim"),
            gate_error_rates=(1e-3,),
            trials=8,
            shard_size=4,
            seed=3,
            backend="batched",
            fault_model="stochastic",
            application=True,
        ),
    ]


def build_database(db_path) -> None:
    """Record the two golden campaigns live, exactly as ``--db`` would."""
    from repro.campaign import run_campaign

    for spec in corpus_specs():
        run_campaign(spec, workers=0, db=db_path)


def render(db_path, fmt: str) -> str:
    """The real CLI surface: ``python -m repro query`` stdout, verbatim."""
    from repro.__main__ import main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = main(["query", "--db", str(db_path), "--format", fmt])
    assert status == 0
    return buffer.getvalue()


def main(argv) -> int:
    if argv[1:] != ["--write"]:
        print(__doc__)
        print(f"usage: PYTHONPATH=src python {argv[0]} --write", file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "golden.sqlite")
        build_database(db_path)
        for fmt in FORMATS:
            with open(golden_path(fmt), "w", encoding="utf-8") as handle:
                handle.write(render(db_path, fmt))
            print(f"wrote {golden_path(fmt)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
