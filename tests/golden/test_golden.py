"""Golden regression tests: pinned counters per (scheme, fault model).

A failure here means the numerical behaviour of the stack changed for fixed
seeds — either a regression to fix, or an intentional semantic change, in
which case regenerate with::

    PYTHONPATH=src python tests/golden/golden_store.py --write

and say why in the commit message.
"""

import pytest

import golden_store
from repro.campaign.aggregate import COUNT_KEYS


@pytest.mark.parametrize("scheme", golden_store.SCHEMES)
class TestGoldenCounters:
    def test_metadata_matches_current_constants(self, scheme):
        payload = golden_store.load_golden(scheme)
        assert payload["workload"] == golden_store.WORKLOAD
        assert payload["scheme"] == scheme
        assert payload["trials"] == golden_store.TRIALS
        assert payload["seed"] == golden_store.SEED
        # The stuck columns are layout-derived: a column-layout change shows
        # up here before it silently re-targets the stuck-at golden.
        backend = golden_store._backend(scheme)
        assert payload["stuck_columns"] == list(golden_store._stuck_columns(backend))
        assert set(payload["counters"]) == set(golden_store.MODEL_KINDS)

    @pytest.mark.parametrize("kind", golden_store.MODEL_KINDS)
    @pytest.mark.parametrize("backend", golden_store.PINNED_BACKENDS)
    def test_counters_match_golden(self, scheme, kind, backend):
        stored = golden_store.load_golden(scheme)["counters"][kind]
        computed = golden_store.compute_counts(scheme, kind, backend)
        assert computed == stored, (
            f"golden drift in {scheme}/{kind} on {backend}: if this change is "
            "intentional, regenerate with "
            "PYTHONPATH=src python tests/golden/golden_store.py --write"
        )

    def test_goldens_carry_the_campaign_counter_schema(self, scheme):
        for kind, counters in golden_store.load_golden(scheme)["counters"].items():
            assert set(counters) == set(COUNT_KEYS), kind
            assert counters["trials"] == golden_store.TRIALS
            # A golden with no injected faults would pin nothing worth having.
            assert counters["faults_injected"] > 0, kind
