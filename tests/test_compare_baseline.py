"""Tests for the CI perf-baseline gate (``benchmarks/compare_baseline.py``).

The gate script is deliberately free of repo imports (pure JSON), so these
tests load it by file path and drive both the comparison core and the CLI
against synthetic pytest-benchmark result files.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_baseline.py"
_spec = importlib.util.spec_from_file_location("compare_baseline", _SCRIPT)
compare_baseline = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_baseline)


def results_file(tmp_path, medians, name="results.json"):
    path = tmp_path / name
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": key, "stats": {"median": value}}
                    for key, value in medians.items()
                ]
            }
        )
    )
    return path


class TestCompare:
    def test_within_threshold_passes(self):
        rows, failed = compare_baseline.compare({"a": 1.2}, {"a": 1.0}, threshold=0.30)
        assert not failed
        assert rows[0][4] == "ok"

    def test_synthetic_regression_fails(self):
        # The acceptance case: a median 31% over baseline must fail the gate.
        rows, failed = compare_baseline.compare({"a": 1.31}, {"a": 1.0}, threshold=0.30)
        assert failed
        assert rows[0][4] == "REGRESSED"
        assert rows[0][3] == pytest.approx(0.31)

    def test_speedup_never_fails(self):
        rows, failed = compare_baseline.compare({"a": 0.1}, {"a": 1.0}, threshold=0.30)
        assert not failed

    def test_missing_benchmark_fails(self):
        rows, failed = compare_baseline.compare({}, {"a": 1.0}, threshold=0.30)
        assert failed
        assert rows[0][4] == "MISSING"

    def test_new_benchmark_is_reported_not_failed(self):
        rows, failed = compare_baseline.compare({"b": 1.0}, {}, threshold=0.30)
        assert not failed
        assert rows[0][4] == "new"


class TestCli:
    def test_passing_run_exits_zero_and_writes_delta(self, tmp_path):
        results = results_file(tmp_path, {"bench::x": 1.0})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"bench::x": 0.9}))
        delta = tmp_path / "delta.txt"
        code = compare_baseline.main(
            [str(results), "--baseline", str(baseline), "--output", str(delta)]
        )
        assert code == 0
        assert "bench::x" in delta.read_text()

    def test_regressed_run_exits_one(self, tmp_path, capsys):
        results = results_file(tmp_path, {"bench::x": 2.0})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"bench::x": 1.0}))
        code = compare_baseline.main([str(results), "--baseline", str(baseline)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "+100.0%" in out

    def test_threshold_flag_is_respected(self, tmp_path):
        results = results_file(tmp_path, {"bench::x": 2.0})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"bench::x": 1.0}))
        code = compare_baseline.main(
            [str(results), "--baseline", str(baseline), "--threshold", "1.5"]
        )
        assert code == 0

    def test_write_regenerates_the_baseline(self, tmp_path):
        results = results_file(tmp_path, {"bench::x": 1.5, "bench::y": 0.25})
        baseline = tmp_path / "baseline.json"
        code = compare_baseline.main([str(results), "--baseline", str(baseline), "--write"])
        assert code == 0
        assert json.loads(baseline.read_text()) == {"bench::x": 1.5, "bench::y": 0.25}
        # And the written baseline round-trips as a passing comparison.
        assert compare_baseline.main([str(results), "--baseline", str(baseline)]) == 0

    def test_absent_baseline_is_a_distinct_error(self, tmp_path):
        results = results_file(tmp_path, {"bench::x": 1.0})
        code = compare_baseline.main(
            [str(results), "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2

    def test_repo_baseline_tracks_the_real_suite(self):
        # The pinned baseline must cover the four benchmark files CI runs.
        baseline = json.loads((_SCRIPT.parent / "baseline.json").read_text())
        files = {name.split("::")[0] for name in baseline}
        assert files == {
            "benchmarks/test_bench_sep_throughput.py",
            "benchmarks/test_bench_batched_throughput.py",
            "benchmarks/test_bench_bitpacked_throughput.py",
            "benchmarks/test_bench_multifault_sweep.py",
        }
