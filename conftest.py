"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
